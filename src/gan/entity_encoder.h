#ifndef SERD_GAN_ENTITY_ENCODER_H_
#define SERD_GAN_ENTITY_ENCODER_H_

#include <string>
#include <vector>

#include "data/similarity.h"
#include "data/table.h"

namespace serd {

/// Maps entities to fixed-width float feature vectors for the GAN
/// (the "entity in a matrix form" of paper Section IV-B2):
///  - numeric/date columns: min-max normalized scalar,
///  - categorical columns: hashed one-hot over `categorical_buckets`,
///  - text columns: hashed character 3-gram counts over `text_buckets`,
///    L2-normalized, plus a normalized length feature.
struct EntityEncoderOptions {
  int categorical_buckets = 8;
  int text_buckets = 24;
  double max_text_len = 80.0;  ///< length-feature normalizer
};

class EntityEncoder {
 public:
  using Options = EntityEncoderOptions;

  EntityEncoder(const SimilaritySpec& spec, Options options = Options());

  size_t feature_dim() const { return feature_dim_; }

  /// Encodes one entity; output has feature_dim() entries in ~[0, 1].
  std::vector<float> Encode(const Entity& entity) const;

  /// Greedy decode: for each column, selects from `pools[c]` the value
  /// whose encoding is closest (L2) to the corresponding feature slice.
  /// Used for the GAN cold start (generated features -> concrete entity).
  /// Pools must have one nonempty entry per column.
  Entity Decode(const std::vector<float>& features,
                const std::vector<std::vector<std::string>>& pools) const;

 private:
  void EncodeColumn(size_t col, const std::string& value, float* out) const;
  size_t ColumnWidth(size_t col) const;

  const SimilaritySpec* spec_;
  Options options_;
  size_t feature_dim_;
  std::vector<size_t> offsets_;  // per-column start in the feature vector
};

}  // namespace serd

#endif  // SERD_GAN_ENTITY_ENCODER_H_
