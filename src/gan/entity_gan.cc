#include "gan/entity_gan.h"

#include <algorithm>
#include <cmath>

#include "nn/arena.h"
#include "nn/tape.h"
#include "obs/trace.h"

namespace serd {

using nn::Tape;
using nn::TensorPtr;

EntityGan::EntityGan(size_t feature_dim, GanConfig config)
    : feature_dim_(feature_dim), config_(config) {
  SERD_CHECK_GT(feature_dim_, 0u);
  Rng rng(config_.seed);
  g1_ = std::make_unique<nn::Linear>(config_.latent_dim, config_.hidden_dim,
                                     &rng);
  g2_ = std::make_unique<nn::Linear>(config_.hidden_dim, config_.hidden_dim,
                                     &rng);
  g3_ = std::make_unique<nn::Linear>(config_.hidden_dim, feature_dim_, &rng);
  d1_ = std::make_unique<nn::Linear>(feature_dim_, config_.hidden_dim, &rng);
  d2_ = std::make_unique<nn::Linear>(config_.hidden_dim, config_.hidden_dim,
                                     &rng);
  d3_ = std::make_unique<nn::Linear>(config_.hidden_dim, 1, &rng);
  for (auto* m : {g1_.get(), g2_.get(), g3_.get()}) {
    for (const auto& p : m->parameters()) g_params_.push_back(p);
  }
  for (auto* m : {d1_.get(), d2_.get(), d3_.get()}) {
    for (const auto& p : m->parameters()) d_params_.push_back(p);
  }
}

TensorPtr EntityGan::GeneratorForward(Tape* tape, const TensorPtr& z) const {
  TensorPtr h = g1_->ForwardRelu(tape, z);
  h = g2_->ForwardRelu(tape, h);
  return tape->Sigmoid(g3_->Forward(tape, h));
}

TensorPtr EntityGan::DiscriminatorForward(Tape* tape,
                                          const TensorPtr& x) const {
  TensorPtr h = d1_->ForwardRelu(tape, x);
  h = d2_->ForwardRelu(tape, h);
  return d3_->Forward(tape, h);
}

void EntityGan::Train(const std::vector<std::vector<float>>& real_features) {
  SERD_CHECK(!real_features.empty());
  for (const auto& f : real_features) {
    SERD_CHECK_EQ(f.size(), feature_dim_);
  }
  obs::TraceSpan train_span(config_.metrics, "gan.train");
  Rng rng(config_.seed ^ 0x5bd1e995ULL);
  nn::Adam g_opt(g_params_, config_.lr);
  nn::Adam d_opt(d_params_, config_.lr);

  const size_t n = real_features.size();
  const size_t batch =
      std::min<size_t>(std::max(2, config_.batch_size), n);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;

  nn::TensorArena arena;
  auto make_batch_tensor = [&](size_t start, size_t count) {
    auto x = arena.Allocate(count, feature_dim_);
    for (size_t r = 0; r < count; ++r) {
      const auto& f = real_features[order[start + r]];
      std::copy(f.begin(), f.end(), x->value().begin() + r * feature_dim_);
    }
    return x;
  };
  auto make_noise = [&](size_t count) {
    auto z = arena.Allocate(count, config_.latent_dim);
    for (auto& v : z->value()) {
      v = static_cast<float>(rng.Gaussian());
    }
    return z;
  };

  double last_d_loss = 0.0;
  double last_g_loss = 0.0;
  long steps = 0;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_d_loss = 0.0;
    double epoch_g_loss = 0.0;
    size_t epoch_batches = 0;
    for (size_t start = 0; start + batch <= n; start += batch) {
      // --- Discriminator step: real -> 1, fake -> 0.
      {
        Tape tape;
        arena.Reset();
        tape.set_arena(&arena);
        TensorPtr real = make_batch_tensor(start, batch);
        TensorPtr fake = GeneratorForward(&tape, make_noise(batch));
        // Block generator gradients: detach by copying values.
        auto fake_detached = arena.Allocate(batch, feature_dim_);
        fake_detached->value() = fake->value();
        TensorPtr real_logits = DiscriminatorForward(&tape, real);
        TensorPtr fake_logits = DiscriminatorForward(&tape, fake_detached);
        TensorPtr loss_real = tape.BceWithLogits(real_logits, 1.0f);
        TensorPtr loss_fake = tape.BceWithLogits(fake_logits, 0.0f);
        TensorPtr loss = tape.Scale(tape.Add(loss_real, loss_fake), 0.5f);
        epoch_d_loss += loss->value()[0];
        d_opt.ZeroGrad();
        g_opt.ZeroGrad();
        tape.Backward(loss);
        d_opt.Step();
      }
      // --- Generator step: non-saturating loss, fake -> 1.
      {
        Tape tape;
        arena.Reset();
        tape.set_arena(&arena);
        TensorPtr fake = GeneratorForward(&tape, make_noise(batch));
        TensorPtr fake_logits = DiscriminatorForward(&tape, fake);
        TensorPtr loss = tape.BceWithLogits(fake_logits, 1.0f);
        epoch_g_loss += loss->value()[0];
        g_opt.ZeroGrad();
        d_opt.ZeroGrad();
        tape.Backward(loss);
        g_opt.Step();
      }
      ++epoch_batches;
      ++steps;
    }
    if (epoch_batches > 0) {
      last_d_loss = epoch_d_loss / static_cast<double>(epoch_batches);
      last_g_loss = epoch_g_loss / static_cast<double>(epoch_batches);
    }
    if (config_.metrics != nullptr && epoch_batches > 0) {
      config_.metrics
          ->histogram("gan.d_loss_per_epoch", obs::LinearBounds(0.0, 4.0, 16))
          ->Record(last_d_loss);
      config_.metrics
          ->histogram("gan.g_loss_per_epoch", obs::LinearBounds(0.0, 4.0, 16))
          ->Record(last_g_loss);
    }
  }
  if (config_.metrics != nullptr) {
    obs::Inc(config_.metrics->counter("gan.steps"),
             static_cast<uint64_t>(steps));
    config_.metrics->gauge("gan.final_d_loss")->Set(last_d_loss);
    config_.metrics->gauge("gan.final_g_loss")->Set(last_g_loss);
  }
  trained_ = true;
}

double EntityGan::DiscriminatorScore(
    const std::vector<float>& features) const {
  SERD_CHECK_EQ(features.size(), feature_dim_);
  // The rejection test scores one entity at a time, many times per run;
  // a per-thread arena makes each call allocation-free in steady state.
  thread_local nn::TensorArena score_arena;
  Tape tape;
  score_arena.Reset();
  tape.set_arena(&score_arena);
  tape.set_recording(false);
  auto x = score_arena.Allocate(1, feature_dim_);
  x->value().assign(features.begin(), features.end());
  TensorPtr logit = DiscriminatorForward(&tape, x);
  return 1.0 / (1.0 + std::exp(-static_cast<double>(logit->value()[0])));
}

std::vector<float> EntityGan::GenerateFeatures(Rng* rng) const {
  SERD_CHECK(rng != nullptr);
  thread_local nn::TensorArena gen_arena;
  Tape tape;
  gen_arena.Reset();
  tape.set_arena(&gen_arena);
  tape.set_recording(false);
  auto z = gen_arena.Allocate(1, config_.latent_dim);
  for (auto& v : z->value()) v = static_cast<float>(rng->Gaussian());
  TensorPtr out = GeneratorForward(&tape, z);
  return out->value();
}

double EntityGan::MeanScore(
    const std::vector<std::vector<float>>& features) const {
  SERD_CHECK(!features.empty());
  double total = 0.0;
  for (const auto& f : features) total += DiscriminatorScore(f);
  return total / static_cast<double>(features.size());
}

}  // namespace serd
