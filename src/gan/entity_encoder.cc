#include "gan/entity_encoder.h"

#include <algorithm>
#include <cmath>

#include "text/qgram.h"

namespace serd {
namespace {

/// FNV-1a 64-bit hash for bucketing strings.
uint64_t HashString(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

EntityEncoder::EntityEncoder(const SimilaritySpec& spec, Options options)
    : spec_(&spec), options_(options) {
  SERD_CHECK_GT(options_.categorical_buckets, 0);
  SERD_CHECK_GT(options_.text_buckets, 0);
  offsets_.resize(spec.schema().num_columns());
  size_t off = 0;
  for (size_t c = 0; c < spec.schema().num_columns(); ++c) {
    offsets_[c] = off;
    off += ColumnWidth(c);
  }
  feature_dim_ = off;
}

size_t EntityEncoder::ColumnWidth(size_t col) const {
  switch (spec_->schema().column(col).type) {
    case ColumnType::kNumeric:
    case ColumnType::kDate:
      return 1;
    case ColumnType::kCategorical:
      return static_cast<size_t>(options_.categorical_buckets);
    case ColumnType::kText:
      return static_cast<size_t>(options_.text_buckets) + 1;  // +length
  }
  return 0;
}

void EntityEncoder::EncodeColumn(size_t col, const std::string& value,
                                 float* out) const {
  switch (spec_->schema().column(col).type) {
    case ColumnType::kNumeric:
    case ColumnType::kDate: {
      double v;
      if (!spec_->ParseValue(col, value, &v)) {
        out[0] = 0.5f;
        return;
      }
      double range = spec_->Range(col);
      double normalized =
          range > 0.0 ? (v - spec_->stats()[col].min_value) / range : 0.5;
      out[0] = static_cast<float>(std::clamp(normalized, 0.0, 1.0));
      return;
    }
    case ColumnType::kCategorical: {
      size_t bucket = HashString(value) %
                      static_cast<uint64_t>(options_.categorical_buckets);
      out[bucket] = 1.0f;
      return;
    }
    case ColumnType::kText: {
      auto grams = QgramSet(value, 3);
      const size_t nb = static_cast<size_t>(options_.text_buckets);
      for (const auto& g : grams) {
        out[HashString(g) % nb] += 1.0f;
      }
      double norm_sq = 0.0;
      for (size_t i = 0; i < nb; ++i) norm_sq += out[i] * out[i];
      if (norm_sq > 0.0) {
        float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
        for (size_t i = 0; i < nb; ++i) out[i] *= inv;
      }
      out[nb] = static_cast<float>(
          std::min(1.0, value.size() / options_.max_text_len));
      return;
    }
  }
}

std::vector<float> EntityEncoder::Encode(const Entity& entity) const {
  SERD_CHECK_EQ(entity.values.size(), spec_->schema().num_columns());
  std::vector<float> features(feature_dim_, 0.0f);
  for (size_t c = 0; c < entity.values.size(); ++c) {
    EncodeColumn(c, entity.values[c], features.data() + offsets_[c]);
  }
  return features;
}

Entity EntityEncoder::Decode(
    const std::vector<float>& features,
    const std::vector<std::vector<std::string>>& pools) const {
  SERD_CHECK_EQ(features.size(), feature_dim_);
  SERD_CHECK_EQ(pools.size(), spec_->schema().num_columns());
  Entity entity;
  entity.values.resize(pools.size());
  std::vector<float> candidate(feature_dim_, 0.0f);
  for (size_t c = 0; c < pools.size(); ++c) {
    SERD_CHECK(!pools[c].empty()) << "empty decode pool for column " << c;
    const size_t width = ColumnWidth(c);
    double best = 1e30;
    for (const auto& value : pools[c]) {
      std::fill(candidate.begin() + offsets_[c],
                candidate.begin() + offsets_[c] + width, 0.0f);
      EncodeColumn(c, value, candidate.data() + offsets_[c]);
      double dist = 0.0;
      for (size_t i = 0; i < width; ++i) {
        double d = candidate[offsets_[c] + i] - features[offsets_[c] + i];
        dist += d * d;
      }
      if (dist < best) {
        best = dist;
        entity.values[c] = value;
      }
    }
  }
  return entity;
}

}  // namespace serd
