#ifndef SERD_SEQ2SEQ_TRAINER_H_
#define SERD_SEQ2SEQ_TRAINER_H_

#include <string>
#include <utility>
#include <vector>

#include "dp/accountant.h"
#include "dp/dp_sgd.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"
#include "seq2seq/transformer.h"
#include "text/char_vocab.h"

namespace serd {

/// Training options for one transformer model (paper Algorithm 1).
struct Seq2SeqTrainOptions {
  int epochs = 3;
  int batch_size = 16;
  float learning_rate = 2e-3f;
  DpSgdConfig dp;          ///< clip bound V, noise scale sigma
  uint64_t seed = 7;
  bool verbose = false;
  /// Worker pool for per-example forward/backward + clipping (not owned;
  /// nullptr = serial). Each example draws its dropout stream from the
  /// seed and its global example index and clipped gradients merge in
  /// example order, so the trained weights are bit-identical for any pool
  /// size.
  runtime::ThreadPool* pool = nullptr;

  /// Observability sink (not owned; nullptr = off): counters seq2seq.steps /
  /// seq2seq.examples_clipped / seq2seq.examples_total, histograms
  /// seq2seq.epoch_loss and dp.epsilon_per_epoch, gauge dp.epsilon, timer
  /// seq2seq.train. All values are computed from the ordered example merge,
  /// so they are thread-count independent.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Result of a training run, including the DP guarantee actually spent.
struct Seq2SeqTrainReport {
  int steps = 0;
  double final_loss = 0.0;
  double epsilon = 0.0;  ///< at delta = train delta (1e-5 unless overridden)
  double delta = 1e-5;
  /// Mean loss after each epoch (length = epochs).
  std::vector<double> epoch_losses;
  /// Privacy spent after each epoch at `delta` (length = epochs when DP is
  /// on, empty otherwise). Monotone non-decreasing.
  std::vector<double> epoch_epsilons;
  /// Examples whose pre-clip gradient norm exceeded the clip bound V.
  long clipped_examples = 0;
  long total_examples = 0;
};

/// Trains `model` on (source, target) string pairs with differentially
/// private SGD: per-example gradient clipping, Gaussian noise, Adam on the
/// noisy averaged gradients. This is paper Algorithm 1 with the gradient-
/// descent step generalized to Adam (the DP analysis only concerns the
/// noisy gradient, not the optimizer that consumes it).
Seq2SeqTrainReport TrainSeq2Seq(
    TransformerSeq2Seq* model, const CharVocab& vocab,
    const std::vector<std::pair<std::string, std::string>>& pairs,
    const Seq2SeqTrainOptions& options);

}  // namespace serd

#endif  // SERD_SEQ2SEQ_TRAINER_H_
