#ifndef SERD_SEQ2SEQ_MODEL_BANK_H_
#define SERD_SEQ2SEQ_MODEL_BANK_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "seq2seq/trainer.h"
#include "seq2seq/transformer.h"
#include "text/char_vocab.h"

namespace serd {

/// Similarity function over strings (bound to the column's measure).
using StringSimFn =
    std::function<double(const std::string&, const std::string&)>;

/// Options for the bucketed string synthesizer (paper Section VI).
struct StringBankOptions {
  int num_buckets = 10;        ///< paper: 10 similarity intervals
  int num_candidates = 10;     ///< paper: 10 sampled decoder outputs
  float temperature = 0.9f;    ///< decoding temperature
  TransformerConfig transformer;  ///< vocab_size is filled during training
  Seq2SeqTrainOptions train;
  int max_pairs_per_bucket = 160;
  int min_pairs_per_bucket = 6;   ///< buckets below this are left untrained
  int random_pair_samples = 4000; ///< background pairs examined for bucketing

  /// When the best transformer candidate misses the target similarity by
  /// more than this, a hill-climbing refinement pass nudges it toward the
  /// target (keeps the pipeline usable at CPU-scale model capacity; see
  /// DESIGN.md). Deliberately loose by default: a synthesis step that can
  /// miss is what the paper's entity rejection (Section V) exists to
  /// police — SERD rejects the misses, SERD- keeps them. Set >= 1 to
  /// disable refinement entirely.
  double refine_threshold = 0.22;

  /// Decoder outputs whose fraction of known-pool words falls below this
  /// are discarded as degenerate. Low by default for the same reason as
  /// refine_threshold: implausible entities should reach the GAN
  /// discriminator, whose rejection is the paper's case-1 mechanism.
  double min_pool_word_fraction = 0.15;

  /// Decode candidates through the KV-cached incremental path
  /// (IncrementalDecoder + shared encoder memory + per-thread
  /// encoder-memory cache). Off = the original per-candidate full
  /// re-decode, kept as the reference implementation the cached path is
  /// validated against (serd_cli --reference-decode). Both settings
  /// produce bit-identical synthesized strings at a fixed seed.
  bool incremental_decode = true;

  /// Decode candidates on per-candidate RNG streams (one counter-derived
  /// stream per candidate index) so all live candidates advance
  /// token-lockstep through one M-row GEMM per weight per layer per step
  /// (TransformerSeq2Seq::GenerateBatchLanes). Off by default because the
  /// per-candidate streams draw differently from the shared-stream path,
  /// so released bytes change when this flips (DESIGN.md §5k) — quality is
  /// gated e2e instead (F1 delta vs --reference-decode). Only consulted
  /// when incremental_decode is on.
  bool batched_decode = false;

  /// With batched_decode: true = token-lockstep matrix batching, false =
  /// the lane-sequential per-candidate-stream oracle (same streams, lanes
  /// decoded one at a time). Both produce bit-identical strings — the
  /// oracle exists for equivalence tests and the ci.sh diff stage.
  bool batched_lockstep = true;

  /// Numeric format for the KV-cached decode projections (DESIGN.md §5m):
  /// kFp32 is the exact path, kBf16/kInt8 quantize each trained model's
  /// decoder projection weights once after training/restore and route the
  /// per-step GEMMs through the reduced-precision kernels. Released bytes
  /// can change vs fp32 (perturbed logits), which is why the quality gate
  /// is an e2e F1/JSD delta bound, not bitwise equality. Only consulted
  /// when incremental_decode is on — the full re-decode reference
  /// (--reference-decode) always runs fp32.
  nn::DecodePrecision decode_precision = nn::DecodePrecision::kFp32;

  /// Observability sink (not owned; nullptr = off): counters
  /// s2.bank_synth_calls / s2.bank_fallback_calls / s2.bank_refined_calls
  /// / s2.decode_steps / s2.decode_cached_steps /
  /// s2.decode_quantized_steps /
  /// s2.encoder_cache_hits / s2.encoder_cache_misses,
  /// histogram s2.bank_bucket (index of the model actually used).
  obs::MetricsRegistry* metrics = nullptr;
};

/// Per-bucket training/inference statistics for reports and ablations.
struct StringBankStats {
  std::vector<int> pairs_per_bucket;
  std::vector<bool> bucket_trained;
  double train_seconds = 0.0;
  double mean_epsilon = 0.0;  ///< mean DP epsilon across trained buckets
  int synth_calls = 0;
  int refined_calls = 0;      ///< how often hill-climb refinement kicked in
  /// Synthesize calls served by each bucket's model (after the nearest-
  /// trained-bucket redirect); length num_buckets once trained.
  std::vector<long> bucket_hits;
  long fallback_calls = 0;    ///< calls served by hill-climb search alone
  // Decode-path accounting (not serialized by the artifact store — the
  // model codec writes the fields above only, so adding these keeps old
  // artifacts loadable and save→load→save byte-identical).
  long decode_steps = 0;         ///< next-token logits rows computed
  long decode_cached_steps = 0;  ///< of those, served by the KV cache
  long decode_quantized_steps = 0;  ///< of those, int8/bf16 projections
  long encoder_cache_hits = 0;   ///< encoder memory reused from the cache
  long encoder_cache_misses = 0; ///< encoder memory computed fresh
};

/// The paper's string synthesizer: k transformer models M_1..M_k, one per
/// similarity interval I_i, trained differentially privately on background
/// string pairs whose similarity falls in I_i. Synthesize(s, sim) picks
/// the bucket containing sim, samples `num_candidates` outputs, and
/// returns the one whose achieved similarity is closest to sim.
class StringSynthesisBank {
 public:
  StringSynthesisBank(StringBankOptions options, StringSimFn sim);

  /// Trains the bank from a background corpus (strings from the same
  /// domain, disjoint from the active domain — the privacy mechanism of
  /// paper Fig. 2). Pairs are formed by (a) random corpus pairs, which
  /// populate the low-similarity buckets, and (b) perturbation-augmented
  /// pairs (s, perturb*(s)), which populate mid/high buckets the way
  /// near-duplicates do in real crawled corpora.
  Status Train(const std::vector<std::string>& background_corpus, Rng* rng);

  /// Trains from explicit labeled pairs (callers that already have them).
  Status TrainFromPairs(
      const std::vector<std::pair<std::string, std::string>>& pairs,
      Rng* rng);

  /// Synthesizes s' with sim(s, s') ≈ target_sim. Falls back to
  /// hill-climbing from s (high targets) or from a random background
  /// string (low targets) for untrained buckets.
  std::string Synthesize(const std::string& s, double target_sim,
                         Rng* rng) const;

  bool trained() const { return trained_; }
  const StringBankStats& stats() const { return stats_; }
  const CharVocab& vocab() const { return vocab_; }

  /// Flips the candidate-decode mode after training/restore (serve jobs
  /// toggle it per request on a warm bank). Affects only how future
  /// Synthesize calls decode, never the trained weights.
  void set_batched_decode(bool enabled) { options_.batched_decode = enabled; }
  bool batched_decode() const { return options_.batched_decode; }

  /// Switches the decode precision on a trained/restored bank (serve jobs
  /// toggle it per request on a warm bank). Quantizes every trained
  /// model's decoder projections to `precision` (a no-op for models
  /// already carrying that precision, including pre-quantized artifact
  /// loads) or clears them back to the exact fp32 path. The trained fp32
  /// weights are never modified.
  void set_decode_precision(nn::DecodePrecision precision);
  nn::DecodePrecision decode_precision() const {
    return options_.decode_precision;
  }

  /// Cooperative cancellation for candidate decode (not owned; nullptr =
  /// never cancelled). A tripped token is folded into the decoder's
  /// early-stop callbacks, so a Synthesize call abandons remaining
  /// candidates within one decode step and returns its best-so-far — the
  /// caller (SerdSynthesizer::Synthesize) then observes the token at its
  /// next poll and aborts the run, so the truncated string is discarded,
  /// never released. Set per run by the synthesizer; clear with nullptr.
  void set_cancel_token(const CancelToken* cancel) { cancel_ = cancel; }

  /// The bucket index whose interval contains `sim`.
  int BucketOf(double sim) const;

  // --- artifact-store access (src/artifact) ---

  /// Per-bucket models (index = bucket; null = untrained bucket).
  const std::vector<std::unique_ptr<TransformerSeq2Seq>>& models() const {
    return models_;
  }

  /// Mutable access to a bucket's model (null = untrained bucket). Used by
  /// the artifact store to attach pre-quantized decode weights after
  /// RestoreTrained; never replaces the model itself.
  TransformerSeq2Seq* mutable_model(std::size_t bucket) {
    return bucket < models_.size() ? models_[bucket].get() : nullptr;
  }
  const std::vector<std::string>& corpus() const { return corpus_; }
  const std::vector<std::string>& word_pool() const { return word_pool_; }

  /// Reinstates a trained bank from serialized state without re-running
  /// DP training (warm start). `models.size()` becomes the bank's bucket
  /// count (the trained structure is authoritative over the constructor
  /// options); the stats vectors must match it. The DP epsilon recorded in
  /// `stats.mean_epsilon` is the budget spent by the original training —
  /// reloading spends nothing further.
  Status RestoreTrained(CharVocab vocab, std::vector<std::string> corpus,
                        std::vector<std::string> word_pool,
                        std::vector<std::unique_ptr<TransformerSeq2Seq>> models,
                        StringBankStats stats);

 private:
  std::string SynthesizeWithModel(int bucket, const std::string& s,
                                  double target_sim, Rng* rng) const;
  std::string FallbackSynthesize(const std::string& s, double target_sim,
                                 Rng* rng) const;

  StringBankOptions options_;
  StringSimFn sim_;
  CharVocab vocab_;
  std::vector<std::unique_ptr<TransformerSeq2Seq>> models_;  // size k; may hold nulls
  std::vector<std::string> word_pool_;  // background words for refinement
  std::vector<std::string> corpus_;     // background strings (fallback seeds)
  bool trained_ = false;
  const CancelToken* cancel_ = nullptr;  // not owned; see set_cancel_token
  mutable StringBankStats stats_;
};

}  // namespace serd

#endif  // SERD_SEQ2SEQ_MODEL_BANK_H_
