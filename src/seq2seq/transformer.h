#ifndef SERD_SEQ2SEQ_TRANSFORMER_H_
#define SERD_SEQ2SEQ_TRANSFORMER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "nn/modules.h"
#include "nn/quant.h"
#include "nn/tape.h"
#include "seq2seq/kv_cache.h"

namespace serd {

/// Reduced-precision copies of one decoder layer's projection weights —
/// exactly the per-step GEMMs of the KV-cached decode paths. Cross wk/wv
/// are absent: they run once per source inside EncodeMemory, not per
/// step, and stay fp32 (DESIGN.md §5m).
struct QuantizedDecoderLayer {
  nn::QuantizedLinear self_wq, self_wk, self_wv, self_wo;
  nn::QuantizedLinear cross_wq, cross_wo;
  nn::QuantizedLinear ffn1, ffn2;
};

/// A full quantized weight set for a TransformerSeq2Seq's decode path.
/// LayerNorms, embeddings, and the logit projection (softmax input) stay
/// fp32; so do the encoder and the KV cache contents.
struct QuantizedDecodeWeights {
  nn::DecodePrecision precision = nn::DecodePrecision::kFp32;
  std::vector<QuantizedDecoderLayer> layers;  ///< one per decoder layer
};

/// Transformer hyperparameters. The paper uses d_model 256, 3 layers,
/// 8 heads, dropout 0.1 on GPU; our CPU-scale defaults are smaller (see
/// DESIGN.md substitution table) but the architecture is the same
/// encoder-decoder of "Attention is All You Need".
struct TransformerConfig {
  int vocab_size = 0;     ///< set from the CharVocab
  int d_model = 32;
  int num_heads = 2;
  int num_layers = 1;
  int ffn_dim = 64;
  int max_len = 64;       ///< maximum sequence length (positional table)
  float dropout = 0.1f;
};

/// Multi-head scaled dot-product attention. Query/key/value projections
/// plus an output projection; heads are realized as column slices.
class MultiHeadAttention : public nn::Module {
 public:
  MultiHeadAttention(int d_model, int num_heads, Rng* rng);

  /// queries[Tq,d], keys_values[Tk,d]. `mask` (optional) is an additive
  /// [Tq,Tk] matrix flattened row-major (0 = attend, -1e9 = blocked).
  nn::TensorPtr Forward(nn::Tape* tape, const nn::TensorPtr& queries,
                        const nn::TensorPtr& keys_values,
                        const std::vector<float>* mask) const;

 private:
  // The incremental decode paths (kv_cache.cc) re-implement this forward
  // row-at-a-time / lane-batched against cached K/V, and EncodeMemory
  // precomputes the cross-attention projections; all need the raw
  // projection layers.
  friend class IncrementalDecoder;
  friend class BatchedDecoder;
  friend class TransformerSeq2Seq;

  int d_model_, num_heads_, head_dim_;
  std::unique_ptr<nn::Linear> wq_, wk_, wv_, wo_;
};

/// Pre-LayerNorm encoder layer: x + MHA(LN(x)), then x + FFN(LN(x)).
class EncoderLayer : public nn::Module {
 public:
  EncoderLayer(const TransformerConfig& config, Rng* rng);

  nn::TensorPtr Forward(nn::Tape* tape, const nn::TensorPtr& x, float dropout,
                        Rng* rng) const;

 private:
  std::unique_ptr<MultiHeadAttention> self_attn_;
  std::unique_ptr<nn::LayerNormLayer> ln1_, ln2_;
  std::unique_ptr<nn::Linear> ffn1_, ffn2_;
};

/// Pre-LayerNorm decoder layer: causal self-attention, cross-attention
/// over the encoder memory, then FFN.
class DecoderLayer : public nn::Module {
 public:
  DecoderLayer(const TransformerConfig& config, Rng* rng);

  nn::TensorPtr Forward(nn::Tape* tape, const nn::TensorPtr& x,
                        const nn::TensorPtr& memory,
                        const std::vector<float>* causal_mask, float dropout,
                        Rng* rng) const;

 private:
  friend class IncrementalDecoder;
  friend class BatchedDecoder;
  friend class TransformerSeq2Seq;

  std::unique_ptr<MultiHeadAttention> self_attn_, cross_attn_;
  std::unique_ptr<nn::LayerNormLayer> ln1_, ln2_, ln3_;
  std::unique_ptr<nn::Linear> ffn1_, ffn2_;
};

/// Character-level encoder-decoder transformer for string synthesis
/// (paper Section VI). Token ids come from a CharVocab; id 1 (BOS) starts
/// decoding and id 2 (EOS) terminates it.
class TransformerSeq2Seq : public nn::Module {
 public:
  TransformerSeq2Seq(const TransformerConfig& config, Rng* rng);

  const TransformerConfig& config() const { return config_; }

  /// Teacher-forced training loss: encodes `src_ids`, decodes against
  /// `tgt_ids` shifted by one, returns mean cross-entropy (1x1 tensor).
  /// Dropout is applied when `train_rng` is non-null.
  nn::TensorPtr Loss(nn::Tape* tape, const std::vector<int>& src_ids,
                     const std::vector<int>& tgt_ids, Rng* train_rng) const;

  /// Autoregressive sampled decoding: encodes src once, then repeatedly
  /// samples the next token from softmax(logits / temperature) until EOS
  /// or max_len. Returns the generated ids without BOS/EOS. This is the
  /// reference implementation: each step re-decodes the whole prefix
  /// (O(T^2) attention per step). The KV-cached path (GenerateBatch with
  /// use_kv_cache) is validated against it, step by step and token by
  /// token.
  std::vector<int> Generate(const std::vector<int>& src_ids, Rng* rng,
                            float temperature = 1.0f,
                            GenerateStats* stats = nullptr) const;

  /// Candidate callback for GenerateBatch: candidate index and its
  /// generated ids (no BOS/EOS). Return false to stop early — remaining
  /// candidates are not decoded and consume no RNG draws, mirroring the
  /// caller-side early exit the synthesis bank always had.
  using CandidateFn = std::function<bool(int, const std::vector<int>&)>;

  /// Runs the encoder once (inference mode, no dropout) and captures the
  /// memory plus each decoder layer's cross-attention K/V for reuse across
  /// candidates and rejection-loop retries.
  EncoderMemoryPtr EncodeMemory(const std::vector<int>& src_ids) const;

  /// Decodes up to `num_candidates` sampled candidates sharing `memory`,
  /// invoking `on_candidate` after each. Candidates are decoded strictly
  /// sequentially (candidate i finishes before i+1 starts) so the RNG
  /// consumption order is identical to calling Generate() in a loop; with
  /// `use_kv_cache` each step goes through IncrementalDecoder, otherwise
  /// through the full re-decode (the reference path). Both paths sample
  /// identical tokens at a fixed seed. Returns the number of candidates
  /// decoded.
  int GenerateBatch(const EncoderMemoryPtr& memory, int num_candidates,
                    Rng* rng, float temperature,
                    const CandidateFn& on_candidate, bool use_kv_cache = true,
                    GenerateStats* stats = nullptr) const;

  /// Convenience overload: encodes `src_ids` internally.
  int GenerateBatch(const std::vector<int>& src_ids, int num_candidates,
                    Rng* rng, float temperature,
                    const CandidateFn& on_candidate, bool use_kv_cache = true,
                    GenerateStats* stats = nullptr) const;

  /// Per-candidate-stream decoding: candidate c samples from its own
  /// counter-derived Rng seeded with ShardedRng::DeriveSeed(stream_seed, c),
  /// so no draw-order constraint couples the candidates and they can decode
  /// token-lockstep. With `lockstep` every live candidate advances one
  /// position per BatchedDecoder::Step (one M-row GEMM per weight per layer
  /// per step), lanes retiring on EOS/length-cap so the batch shrinks as
  /// candidates finish; without it candidates decode one at a time through
  /// IncrementalDecoder — the per-lane bit-exactness oracle. Both modes
  /// produce identical per-candidate token sequences, and `on_candidate`
  /// is always invoked in candidate order (lockstep buffers finished lanes
  /// until every lower-indexed lane has been delivered). Returning false
  /// from `on_candidate` abandons all undelivered candidates, mirroring
  /// GenerateBatch's early exit — per-candidate streams mean the extra
  /// tokens an abandoned lane decoded in lockstep mode never influence any
  /// delivered candidate. Released strings differ from the shared-stream
  /// GenerateBatch path (different RNG draws), which is why the bank keeps
  /// this behind StringBankOptions::batched_decode (DESIGN.md §5k).
  /// Returns the number of candidates delivered to `on_candidate`.
  int GenerateBatchLanes(const EncoderMemoryPtr& memory, int num_candidates,
                         std::uint64_t stream_seed, float temperature,
                         const CandidateFn& on_candidate, bool lockstep = true,
                         GenerateStats* stats = nullptr) const;

  /// Next-token logits after `prefix_ids` (which must start with BOS) via
  /// the full re-decode over `memory` — the reference the equivalence
  /// tests compare IncrementalDecoder::Step against.
  std::vector<float> NextLogitsFull(const std::vector<int>& prefix_ids,
                                    const EncoderMemoryPtr& memory) const;

  /// Process-unique id, assigned at construction. Keys the per-thread
  /// encoder-memory caches so a freed model's address being reused can
  /// never alias a cache entry.
  std::uint64_t uid() const { return uid_; }

  /// One-shot weight quantization for serving: packs every decoder
  /// layer's per-step projection weights (self wq/wk/wv/wo, cross wq/wo,
  /// ffn1/ffn2) into `precision` and routes the KV-cached decode paths
  /// through the quantized kernels. kFp32 clears any attached set,
  /// restoring the exact path. Re-quantizing to the precision already
  /// attached is a no-op. Training and the full re-decode reference
  /// (Generate / NextLogitsFull / --reference-decode) always stay fp32.
  void QuantizeWeights(nn::DecodePrecision precision);

  /// Attaches a pre-quantized weight set (the artifact load path, so
  /// serving never pays quantize-on-load). Layer count must match the
  /// decoder depth.
  void SetQuantizedWeights(std::unique_ptr<QuantizedDecodeWeights> weights);

  /// The attached quantized set, or null when decoding runs fp32.
  const QuantizedDecodeWeights* quantized_weights() const {
    return quant_.get();
  }

 private:
  friend class IncrementalDecoder;
  friend class BatchedDecoder;

  nn::TensorPtr Encode(nn::Tape* tape, const std::vector<int>& src_ids,
                       float dropout, Rng* rng) const;
  nn::TensorPtr Decode(nn::Tape* tape, const std::vector<int>& tgt_ids,
                       const nn::TensorPtr& memory, float dropout,
                       Rng* rng) const;

  TransformerConfig config_;
  std::uint64_t uid_;
  std::unique_ptr<nn::Embedding> token_embed_;
  std::unique_ptr<nn::Embedding> pos_embed_;
  std::vector<std::unique_ptr<EncoderLayer>> encoder_;
  std::vector<std::unique_ptr<DecoderLayer>> decoder_;
  std::unique_ptr<nn::LayerNormLayer> final_ln_;
  std::unique_ptr<nn::Linear> output_proj_;
  std::unique_ptr<QuantizedDecodeWeights> quant_;
};

}  // namespace serd

#endif  // SERD_SEQ2SEQ_TRANSFORMER_H_
