#include "seq2seq/transformer.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "nn/arena.h"
#include "nn/kernels.h"
#include "runtime/sharded_rng.h"
#include "text/char_vocab.h"

namespace serd {

using nn::Tape;
using nn::TensorPtr;
namespace kernels = nn::kernels;

MultiHeadAttention::MultiHeadAttention(int d_model, int num_heads, Rng* rng)
    : d_model_(d_model), num_heads_(num_heads), head_dim_(d_model / num_heads) {
  SERD_CHECK_EQ(d_model % num_heads, 0)
      << "d_model must be divisible by num_heads";
  wq_ = std::make_unique<nn::Linear>(d_model, d_model, rng);
  wk_ = std::make_unique<nn::Linear>(d_model, d_model, rng);
  wv_ = std::make_unique<nn::Linear>(d_model, d_model, rng);
  wo_ = std::make_unique<nn::Linear>(d_model, d_model, rng);
  AddChild(wq_.get());
  AddChild(wk_.get());
  AddChild(wv_.get());
  AddChild(wo_.get());
}

TensorPtr MultiHeadAttention::Forward(Tape* tape, const TensorPtr& queries,
                                      const TensorPtr& keys_values,
                                      const std::vector<float>* mask) const {
  TensorPtr q = wq_->Forward(tape, queries);       // [Tq, d]
  TensorPtr k = wk_->Forward(tape, keys_values);   // [Tk, d]
  TensorPtr v = wv_->Forward(tape, keys_values);   // [Tk, d]
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  std::vector<TensorPtr> head_outputs;
  head_outputs.reserve(num_heads_);
  for (int h = 0; h < num_heads_; ++h) {
    size_t off = static_cast<size_t>(h) * head_dim_;
    TensorPtr qh = tape->SliceCols(q, off, head_dim_);  // [Tq, hd]
    TensorPtr kh = tape->SliceCols(k, off, head_dim_);  // [Tk, hd]
    TensorPtr vh = tape->SliceCols(v, off, head_dim_);  // [Tk, hd]
    TensorPtr scores =
        tape->Scale(tape->MatMul(qh, tape->Transpose(kh)), scale);  // [Tq,Tk]
    TensorPtr attn = tape->RowSoftmax(scores, mask);
    head_outputs.push_back(tape->MatMul(attn, vh));  // [Tq, hd]
  }
  TensorPtr concat = tape->ConcatCols(head_outputs);  // [Tq, d]
  return wo_->Forward(tape, concat);
}

EncoderLayer::EncoderLayer(const TransformerConfig& config, Rng* rng) {
  self_attn_ =
      std::make_unique<MultiHeadAttention>(config.d_model, config.num_heads,
                                           rng);
  ln1_ = std::make_unique<nn::LayerNormLayer>(config.d_model);
  ln2_ = std::make_unique<nn::LayerNormLayer>(config.d_model);
  ffn1_ = std::make_unique<nn::Linear>(config.d_model, config.ffn_dim, rng);
  ffn2_ = std::make_unique<nn::Linear>(config.ffn_dim, config.d_model, rng);
  AddChild(self_attn_.get());
  AddChild(ln1_.get());
  AddChild(ln2_.get());
  AddChild(ffn1_.get());
  AddChild(ffn2_.get());
}

TensorPtr EncoderLayer::Forward(Tape* tape, const TensorPtr& x, float dropout,
                                Rng* rng) const {
  TensorPtr normed = ln1_->Forward(tape, x);
  TensorPtr attn = self_attn_->Forward(tape, normed, normed, nullptr);
  if (rng != nullptr) attn = tape->Dropout(attn, dropout, rng);
  TensorPtr h = tape->Add(x, attn);
  TensorPtr ff = ffn2_->Forward(
      tape, tape->Gelu(ffn1_->Forward(tape, ln2_->Forward(tape, h))));
  if (rng != nullptr) ff = tape->Dropout(ff, dropout, rng);
  return tape->Add(h, ff);
}

DecoderLayer::DecoderLayer(const TransformerConfig& config, Rng* rng) {
  self_attn_ =
      std::make_unique<MultiHeadAttention>(config.d_model, config.num_heads,
                                           rng);
  cross_attn_ =
      std::make_unique<MultiHeadAttention>(config.d_model, config.num_heads,
                                           rng);
  ln1_ = std::make_unique<nn::LayerNormLayer>(config.d_model);
  ln2_ = std::make_unique<nn::LayerNormLayer>(config.d_model);
  ln3_ = std::make_unique<nn::LayerNormLayer>(config.d_model);
  ffn1_ = std::make_unique<nn::Linear>(config.d_model, config.ffn_dim, rng);
  ffn2_ = std::make_unique<nn::Linear>(config.ffn_dim, config.d_model, rng);
  AddChild(self_attn_.get());
  AddChild(cross_attn_.get());
  AddChild(ln1_.get());
  AddChild(ln2_.get());
  AddChild(ln3_.get());
  AddChild(ffn1_.get());
  AddChild(ffn2_.get());
}

TensorPtr DecoderLayer::Forward(Tape* tape, const TensorPtr& x,
                                const TensorPtr& memory,
                                const std::vector<float>* causal_mask,
                                float dropout, Rng* rng) const {
  TensorPtr normed = ln1_->Forward(tape, x);
  TensorPtr self_out =
      self_attn_->Forward(tape, normed, normed, causal_mask);
  if (rng != nullptr) self_out = tape->Dropout(self_out, dropout, rng);
  TensorPtr h = tape->Add(x, self_out);

  TensorPtr cross_out =
      cross_attn_->Forward(tape, ln2_->Forward(tape, h), memory, nullptr);
  if (rng != nullptr) cross_out = tape->Dropout(cross_out, dropout, rng);
  h = tape->Add(h, cross_out);

  TensorPtr ff = ffn2_->Forward(
      tape, tape->Gelu(ffn1_->Forward(tape, ln3_->Forward(tape, h))));
  if (rng != nullptr) ff = tape->Dropout(ff, dropout, rng);
  return tape->Add(h, ff);
}

namespace {

std::uint64_t NextModelUid() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

TransformerSeq2Seq::TransformerSeq2Seq(const TransformerConfig& config,
                                       Rng* rng)
    : config_(config), uid_(NextModelUid()) {
  SERD_CHECK_GT(config.vocab_size, 0);
  token_embed_ =
      std::make_unique<nn::Embedding>(config.vocab_size, config.d_model, rng);
  pos_embed_ =
      std::make_unique<nn::Embedding>(config.max_len, config.d_model, rng);
  for (int i = 0; i < config.num_layers; ++i) {
    encoder_.push_back(std::make_unique<EncoderLayer>(config, rng));
    decoder_.push_back(std::make_unique<DecoderLayer>(config, rng));
  }
  final_ln_ = std::make_unique<nn::LayerNormLayer>(config.d_model);
  output_proj_ =
      std::make_unique<nn::Linear>(config.d_model, config.vocab_size, rng);
  AddChild(token_embed_.get());
  AddChild(pos_embed_.get());
  for (auto& l : encoder_) AddChild(l.get());
  for (auto& l : decoder_) AddChild(l.get());
  AddChild(final_ln_.get());
  AddChild(output_proj_.get());
}

namespace {

std::vector<int> ClampToMaxLen(const std::vector<int>& ids, int max_len) {
  if (static_cast<int>(ids.size()) <= max_len) return ids;
  std::vector<int> out(ids.begin(), ids.begin() + max_len - 1);
  out.push_back(CharVocab::kEos);
  return out;
}

std::vector<int> Positions(size_t len) {
  std::vector<int> pos(len);
  for (size_t i = 0; i < len; ++i) pos[i] = static_cast<int>(i);
  return pos;
}

std::vector<float> CausalMask(size_t t) {
  std::vector<float> mask(t * t, 0.0f);
  for (size_t i = 0; i < t; ++i) {
    for (size_t j = i + 1; j < t; ++j) mask[i * t + j] = -1e9f;
  }
  return mask;
}

/// Samples the next token from softmax(logits / temperature) with the
/// special ids (PAD/BOS/UNK) excluded. `probs` and `weights` are
/// caller-owned scratch reused across steps and candidates, so the decode
/// loops allocate nothing per step. The softmax goes through the kernel
/// primitive; Rng::Categorical renormalizes internally, so zeroing the
/// specials after the softmax preserves the sampling distribution. Shared
/// by Generate and both GenerateBatch paths so all of them draw identical
/// tokens from identical logits.
int SampleToken(const float* logits, size_t vocab, float temperature,
                std::vector<float>* probs, std::vector<double>* weights,
                Rng* rng) {
  probs->resize(vocab);
  weights->resize(vocab);
  kernels::ScaleCopy(vocab, 1.0f / temperature, logits, probs->data());
  kernels::SoftmaxRows(1, vocab, probs->data(), /*add_mask=*/nullptr,
                       probs->data());
  std::copy(probs->begin(), probs->end(), weights->begin());
  // Never sample PAD, BOS, or UNK.
  (*weights)[CharVocab::kPad] = 0.0;
  (*weights)[CharVocab::kBos] = 0.0;
  (*weights)[CharVocab::kUnk] = 0.0;
  return static_cast<int>(rng->Categorical(*weights));
}

/// Rebuilds a tensor view of the captured encoder memory for the full
/// re-decode path. Values are the exact floats Encode produced, so
/// decoding over it matches decoding over the live Encode output bitwise.
TensorPtr MemoryTensor(const EncoderMemory& m) {
  auto t = nn::MakeTensor(m.mem_len, m.d_model);
  std::copy(m.values.begin(), m.values.end(), t->value().begin());
  return t;
}

}  // namespace

TensorPtr TransformerSeq2Seq::Encode(Tape* tape,
                                     const std::vector<int>& src_ids,
                                     float dropout, Rng* rng) const {
  auto ids = ClampToMaxLen(src_ids, config_.max_len);
  TensorPtr x = tape->Add(token_embed_->Forward(tape, ids),
                          pos_embed_->Forward(tape, Positions(ids.size())));
  if (rng != nullptr) x = tape->Dropout(x, dropout, rng);
  for (const auto& layer : encoder_) {
    x = layer->Forward(tape, x, dropout, rng);
  }
  return x;
}

TensorPtr TransformerSeq2Seq::Decode(Tape* tape,
                                     const std::vector<int>& tgt_ids,
                                     const TensorPtr& memory, float dropout,
                                     Rng* rng) const {
  TensorPtr x = tape->Add(token_embed_->Forward(tape, tgt_ids),
                          pos_embed_->Forward(tape, Positions(tgt_ids.size())));
  if (rng != nullptr) x = tape->Dropout(x, dropout, rng);
  std::vector<float> mask = CausalMask(tgt_ids.size());
  for (const auto& layer : decoder_) {
    x = layer->Forward(tape, x, memory, &mask, dropout, rng);
  }
  return output_proj_->Forward(tape, final_ln_->Forward(tape, x));
}

TensorPtr TransformerSeq2Seq::Loss(Tape* tape, const std::vector<int>& src_ids,
                                   const std::vector<int>& tgt_ids,
                                   Rng* train_rng) const {
  SERD_CHECK_GE(tgt_ids.size(), 2u) << "target must contain BOS and EOS";
  auto tgt = ClampToMaxLen(tgt_ids, config_.max_len);
  std::vector<int> decoder_input(tgt.begin(), tgt.end() - 1);
  std::vector<int> targets(tgt.begin() + 1, tgt.end());
  TensorPtr memory = Encode(tape, src_ids, config_.dropout, train_rng);
  TensorPtr logits =
      Decode(tape, decoder_input, memory, config_.dropout, train_rng);
  return tape->CrossEntropy(logits, targets, CharVocab::kPad);
}

std::vector<int> TransformerSeq2Seq::Generate(const std::vector<int>& src_ids,
                                              Rng* rng, float temperature,
                                              GenerateStats* stats) const {
  SERD_CHECK(rng != nullptr);
  SERD_CHECK_GT(temperature, 0.0f);
  Tape enc_tape;
  enc_tape.set_recording(false);
  TensorPtr memory = Encode(&enc_tape, src_ids, 0.0f, nullptr);

  // Strings in one column have comparable lengths; capping generation at
  // src length + slack keeps undertrained models (which rarely emit EOS)
  // from always decoding to max_len, the dominant online cost.
  const int length_cap = std::min<int>(
      config_.max_len, static_cast<int>(src_ids.size()) + 8);
  // Per-thread arena for the decode steps: each step builds the same
  // graph one token longer, so recycling the previous step's tensors
  // removes nearly all per-op allocation. `memory` lives outside the
  // arena (enc_tape has none), so the per-step reset cannot touch it.
  thread_local nn::TensorArena decode_arena;
  // Sampling scratch, reused across every step (hoisted out of the loop).
  std::vector<float> probs;
  std::vector<double> weights;
  std::vector<int> generated = {CharVocab::kBos};
  while (static_cast<int>(generated.size()) < length_cap) {
    Tape dec_tape;
    decode_arena.Reset();
    dec_tape.set_arena(&decode_arena);
    dec_tape.set_recording(false);
    TensorPtr logits = Decode(&dec_tape, generated, memory, 0.0f, nullptr);
    if (stats != nullptr) ++stats->steps;
    const size_t last = logits->rows() - 1;
    const int next =
        SampleToken(logits->value().data() + last * logits->cols(),
                    logits->cols(), temperature, &probs, &weights, rng);
    if (next == CharVocab::kEos) break;
    generated.push_back(next);
  }
  return std::vector<int>(generated.begin() + 1, generated.end());
}

EncoderMemoryPtr TransformerSeq2Seq::EncodeMemory(
    const std::vector<int>& src_ids) const {
  Tape tape;
  tape.set_recording(false);
  TensorPtr mem = Encode(&tape, src_ids, 0.0f, nullptr);

  auto out = std::make_shared<EncoderMemory>();
  out->model_uid = uid_;
  out->mem_len = static_cast<int>(mem->rows());
  out->d_model = static_cast<int>(mem->cols());
  out->src_len = static_cast<int>(src_ids.size());
  out->values = mem->value();
  out->cross.resize(decoder_.size());
  // Cross-attention K/V depend only on the memory: precompute them with
  // the exact kernel calls Linear::Forward makes (full-matrix GEMM + the
  // per-row bias add of AddRowBroadcast), so every cached decode step sees
  // bit-identical projections.
  const size_t ml = mem->rows(), d = mem->cols();
  for (size_t l = 0; l < decoder_.size(); ++l) {
    const MultiHeadAttention& cross = *decoder_[l]->cross_attn_;
    auto project = [&](const nn::Linear& lin, std::vector<float>* dst) {
      dst->resize(ml * d);
      kernels::GemmNN(ml, d, d, out->values.data(),
                      lin.weight()->value().data(), dst->data(),
                      /*accumulate=*/false);
      if (lin.bias() != nullptr) {
        const float* bias = lin.bias()->value().data();
        for (size_t r = 0; r < ml; ++r) {
          kernels::Add(d, dst->data() + r * d, bias, dst->data() + r * d);
        }
      }
    };
    project(*cross.wk_, &out->cross[l].k);
    project(*cross.wv_, &out->cross[l].v);
  }
  return out;
}

int TransformerSeq2Seq::GenerateBatch(const EncoderMemoryPtr& memory,
                                      int num_candidates, Rng* rng,
                                      float temperature,
                                      const CandidateFn& on_candidate,
                                      bool use_kv_cache,
                                      GenerateStats* stats) const {
  SERD_CHECK(rng != nullptr);
  SERD_CHECK(memory != nullptr);
  SERD_CHECK_EQ(memory->model_uid, uid_)
      << "encoder memory was built by a different model";
  SERD_CHECK_GT(temperature, 0.0f);
  // Same cap as Generate, derived from the unclamped source length.
  const int length_cap =
      std::min<int>(config_.max_len, memory->src_len + 8);
  std::vector<float> probs;
  std::vector<double> weights;
  std::unique_ptr<IncrementalDecoder> dec;
  TensorPtr mem_tensor;
  int produced = 0;
  // Candidates decode strictly one after another — never token-lockstep —
  // so the shared RNG's draw order matches a plain Generate loop and
  // results stay bit-identical to the pre-cache implementation. The
  // "batch" amortization is the shared encode + cross K/V, not the
  // sampling order.
  for (int c = 0; c < num_candidates; ++c) {
    std::vector<int> generated = {CharVocab::kBos};
    if (use_kv_cache) {
      if (dec == nullptr) {
        dec = std::make_unique<IncrementalDecoder>(this, memory);
      } else {
        dec->Restart();
      }
      while (static_cast<int>(generated.size()) < length_cap) {
        const float* logits = dec->Step(generated.back());
        if (stats != nullptr) {
          ++stats->steps;
          ++stats->cached_steps;
          if (quant_ != nullptr) ++stats->quantized_steps;
        }
        const int next =
            SampleToken(logits, config_.vocab_size, temperature, &probs,
                        &weights, rng);
        if (next == CharVocab::kEos) break;
        generated.push_back(next);
      }
    } else {
      // Reference path: full re-decode per step over the captured memory.
      if (mem_tensor == nullptr) mem_tensor = MemoryTensor(*memory);
      thread_local nn::TensorArena decode_arena;
      while (static_cast<int>(generated.size()) < length_cap) {
        Tape dec_tape;
        decode_arena.Reset();
        dec_tape.set_arena(&decode_arena);
        dec_tape.set_recording(false);
        TensorPtr logits =
            Decode(&dec_tape, generated, mem_tensor, 0.0f, nullptr);
        if (stats != nullptr) ++stats->steps;
        const size_t last = logits->rows() - 1;
        const int next =
            SampleToken(logits->value().data() + last * logits->cols(),
                        logits->cols(), temperature, &probs, &weights, rng);
        if (next == CharVocab::kEos) break;
        generated.push_back(next);
      }
    }
    ++produced;
    std::vector<int> out_ids(generated.begin() + 1, generated.end());
    if (!on_candidate(c, out_ids)) break;
  }
  return produced;
}

int TransformerSeq2Seq::GenerateBatch(const std::vector<int>& src_ids,
                                      int num_candidates, Rng* rng,
                                      float temperature,
                                      const CandidateFn& on_candidate,
                                      bool use_kv_cache,
                                      GenerateStats* stats) const {
  return GenerateBatch(EncodeMemory(src_ids), num_candidates, rng,
                       temperature, on_candidate, use_kv_cache, stats);
}

int TransformerSeq2Seq::GenerateBatchLanes(const EncoderMemoryPtr& memory,
                                           int num_candidates,
                                           std::uint64_t stream_seed,
                                           float temperature,
                                           const CandidateFn& on_candidate,
                                           bool lockstep,
                                           GenerateStats* stats) const {
  SERD_CHECK(memory != nullptr);
  SERD_CHECK_EQ(memory->model_uid, uid_)
      << "encoder memory was built by a different model";
  SERD_CHECK_GT(temperature, 0.0f);
  SERD_CHECK_GT(num_candidates, 0);
  // Same cap as Generate/GenerateBatch, from the unclamped source length.
  const int length_cap =
      std::min<int>(config_.max_len, memory->src_len + 8);
  std::vector<float> probs;
  std::vector<double> weights;
  int produced = 0;

  if (!lockstep) {
    // Lane-sequential oracle: identical per-candidate streams, candidates
    // decoded one at a time through the single-lane incremental decoder.
    // The lockstep path below must match this bitwise, lane for lane.
    IncrementalDecoder dec(this, memory);
    for (int c = 0; c < num_candidates; ++c) {
      if (c > 0) dec.Restart();
      Rng lane_rng(runtime::ShardedRng::DeriveSeed(stream_seed,
                                                   static_cast<uint64_t>(c)));
      std::vector<int> generated = {CharVocab::kBos};
      while (static_cast<int>(generated.size()) < length_cap) {
        const float* logits = dec.Step(generated.back());
        if (stats != nullptr) {
          ++stats->steps;
          ++stats->cached_steps;
          if (quant_ != nullptr) ++stats->quantized_steps;
        }
        const int next = SampleToken(logits, config_.vocab_size, temperature,
                                     &probs, &weights, &lane_rng);
        if (next == CharVocab::kEos) break;
        generated.push_back(next);
      }
      ++produced;
      std::vector<int> out_ids(generated.begin() + 1, generated.end());
      if (!on_candidate(c, out_ids)) break;
    }
    return produced;
  }

  // Token-lockstep path: every live lane advances one position per
  // BatchedDecoder::Step. Finished lanes are delivered strictly in
  // candidate order so observable behaviour (callback sequence, early
  // exit) matches the lane-sequential oracle above.
  BatchedDecoder dec(this,
                     std::vector<EncoderMemoryPtr>(num_candidates, memory));
  std::vector<Rng> lane_rngs;
  lane_rngs.reserve(num_candidates);
  for (int c = 0; c < num_candidates; ++c) {
    lane_rngs.emplace_back(runtime::ShardedRng::DeriveSeed(
        stream_seed, static_cast<uint64_t>(c)));
  }
  std::vector<std::vector<int>> generated(
      num_candidates, std::vector<int>{CharVocab::kBos});
  std::vector<bool> finished(num_candidates, false);
  std::vector<int> live, still, tokens;
  if (length_cap > 1) {
    live.resize(num_candidates);
    for (int c = 0; c < num_candidates; ++c) live[c] = c;
  } else {
    finished.assign(num_candidates, true);  // degenerate cap: empty outputs
  }
  int next_to_deliver = 0;
  // Delivers every finished lane whose predecessors are all delivered.
  // Returns false when the callback stops the batch.
  auto deliver_ready = [&]() {
    while (next_to_deliver < num_candidates && finished[next_to_deliver]) {
      const auto& g = generated[next_to_deliver];
      std::vector<int> out_ids(g.begin() + 1, g.end());
      ++produced;
      if (!on_candidate(next_to_deliver, out_ids)) return false;
      ++next_to_deliver;
    }
    return true;
  };
  while (!live.empty()) {
    tokens.clear();
    for (int lane : live) tokens.push_back(generated[lane].back());
    const float* logits = dec.Step(live, tokens);
    if (stats != nullptr) {
      stats->steps += static_cast<long>(live.size());
      stats->cached_steps += static_cast<long>(live.size());
      if (quant_ != nullptr) {
        stats->quantized_steps += static_cast<long>(live.size());
      }
    }
    still.clear();
    for (std::size_t i = 0; i < live.size(); ++i) {
      const int lane = live[i];
      const int next = SampleToken(
          logits + i * static_cast<std::size_t>(config_.vocab_size),
          config_.vocab_size, temperature, &probs, &weights,
          &lane_rngs[lane]);
      if (next != CharVocab::kEos) generated[lane].push_back(next);
      if (next == CharVocab::kEos ||
          static_cast<int>(generated[lane].size()) >= length_cap) {
        finished[lane] = true;  // lane retires; its cache rows go dormant
      } else {
        still.push_back(lane);
      }
    }
    live.swap(still);
    // Early stop abandons every live and undelivered lane. Abandoned
    // lanes drew only from their own streams, so delivered candidates
    // are unaffected — unlike the shared-stream GenerateBatch.
    if (!deliver_ready()) return produced;
  }
  deliver_ready();
  return produced;
}

namespace {

/// Packs one nn::Linear into a QuantizedLinear: the [in, out] fp32 weight
/// transposes into the contiguous-per-channel quantized layout, and the
/// bias (if any) is copied so the kernels can fuse it into the dequant
/// epilogue.
nn::QuantizedLinear QuantizeLinear(const nn::Linear& lin,
                                   nn::DecodePrecision precision) {
  const nn::TensorPtr& w = lin.weight();
  nn::QuantizedLinear out;
  out.w = nn::QuantizeWeightMatrix(w->rows(), w->cols(),
                                   w->value().data(), precision);
  if (lin.bias() != nullptr) out.bias = lin.bias()->value();
  return out;
}

}  // namespace

void TransformerSeq2Seq::QuantizeWeights(nn::DecodePrecision precision) {
  if (precision == nn::DecodePrecision::kFp32) {
    quant_.reset();
    return;
  }
  if (quant_ != nullptr && quant_->precision == precision) return;
  auto qw = std::make_unique<QuantizedDecodeWeights>();
  qw->precision = precision;
  qw->layers.reserve(decoder_.size());
  for (const auto& layer : decoder_) {
    QuantizedDecoderLayer ql;
    ql.self_wq = QuantizeLinear(*layer->self_attn_->wq_, precision);
    ql.self_wk = QuantizeLinear(*layer->self_attn_->wk_, precision);
    ql.self_wv = QuantizeLinear(*layer->self_attn_->wv_, precision);
    ql.self_wo = QuantizeLinear(*layer->self_attn_->wo_, precision);
    ql.cross_wq = QuantizeLinear(*layer->cross_attn_->wq_, precision);
    ql.cross_wo = QuantizeLinear(*layer->cross_attn_->wo_, precision);
    ql.ffn1 = QuantizeLinear(*layer->ffn1_, precision);
    ql.ffn2 = QuantizeLinear(*layer->ffn2_, precision);
    qw->layers.push_back(std::move(ql));
  }
  quant_ = std::move(qw);
}

void TransformerSeq2Seq::SetQuantizedWeights(
    std::unique_ptr<QuantizedDecodeWeights> weights) {
  if (weights != nullptr) {
    SERD_CHECK_EQ(weights->layers.size(), decoder_.size())
        << "quantized weight set does not match the decoder depth";
    SERD_CHECK(weights->precision != nn::DecodePrecision::kFp32);
  }
  quant_ = std::move(weights);
}

std::vector<float> TransformerSeq2Seq::NextLogitsFull(
    const std::vector<int>& prefix_ids, const EncoderMemoryPtr& memory) const {
  SERD_CHECK(!prefix_ids.empty());
  SERD_CHECK(memory != nullptr);
  SERD_CHECK_EQ(memory->model_uid, uid_);
  TensorPtr mem_tensor = MemoryTensor(*memory);
  Tape tape;
  tape.set_recording(false);
  TensorPtr logits = Decode(&tape, prefix_ids, mem_tensor, 0.0f, nullptr);
  const size_t last = logits->rows() - 1;
  const float* row = logits->value().data() + last * logits->cols();
  return std::vector<float>(row, row + logits->cols());
}

}  // namespace serd
