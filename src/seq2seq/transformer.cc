#include "seq2seq/transformer.h"

#include <algorithm>
#include <cmath>

#include "nn/arena.h"
#include "text/char_vocab.h"

namespace serd {

using nn::Tape;
using nn::TensorPtr;

MultiHeadAttention::MultiHeadAttention(int d_model, int num_heads, Rng* rng)
    : d_model_(d_model), num_heads_(num_heads), head_dim_(d_model / num_heads) {
  SERD_CHECK_EQ(d_model % num_heads, 0)
      << "d_model must be divisible by num_heads";
  wq_ = std::make_unique<nn::Linear>(d_model, d_model, rng);
  wk_ = std::make_unique<nn::Linear>(d_model, d_model, rng);
  wv_ = std::make_unique<nn::Linear>(d_model, d_model, rng);
  wo_ = std::make_unique<nn::Linear>(d_model, d_model, rng);
  AddChild(wq_.get());
  AddChild(wk_.get());
  AddChild(wv_.get());
  AddChild(wo_.get());
}

TensorPtr MultiHeadAttention::Forward(Tape* tape, const TensorPtr& queries,
                                      const TensorPtr& keys_values,
                                      const std::vector<float>* mask) const {
  TensorPtr q = wq_->Forward(tape, queries);       // [Tq, d]
  TensorPtr k = wk_->Forward(tape, keys_values);   // [Tk, d]
  TensorPtr v = wv_->Forward(tape, keys_values);   // [Tk, d]
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  std::vector<TensorPtr> head_outputs;
  head_outputs.reserve(num_heads_);
  for (int h = 0; h < num_heads_; ++h) {
    size_t off = static_cast<size_t>(h) * head_dim_;
    TensorPtr qh = tape->SliceCols(q, off, head_dim_);  // [Tq, hd]
    TensorPtr kh = tape->SliceCols(k, off, head_dim_);  // [Tk, hd]
    TensorPtr vh = tape->SliceCols(v, off, head_dim_);  // [Tk, hd]
    TensorPtr scores =
        tape->Scale(tape->MatMul(qh, tape->Transpose(kh)), scale);  // [Tq,Tk]
    TensorPtr attn = tape->RowSoftmax(scores, mask);
    head_outputs.push_back(tape->MatMul(attn, vh));  // [Tq, hd]
  }
  TensorPtr concat = tape->ConcatCols(head_outputs);  // [Tq, d]
  return wo_->Forward(tape, concat);
}

EncoderLayer::EncoderLayer(const TransformerConfig& config, Rng* rng) {
  self_attn_ =
      std::make_unique<MultiHeadAttention>(config.d_model, config.num_heads,
                                           rng);
  ln1_ = std::make_unique<nn::LayerNormLayer>(config.d_model);
  ln2_ = std::make_unique<nn::LayerNormLayer>(config.d_model);
  ffn1_ = std::make_unique<nn::Linear>(config.d_model, config.ffn_dim, rng);
  ffn2_ = std::make_unique<nn::Linear>(config.ffn_dim, config.d_model, rng);
  AddChild(self_attn_.get());
  AddChild(ln1_.get());
  AddChild(ln2_.get());
  AddChild(ffn1_.get());
  AddChild(ffn2_.get());
}

TensorPtr EncoderLayer::Forward(Tape* tape, const TensorPtr& x, float dropout,
                                Rng* rng) const {
  TensorPtr normed = ln1_->Forward(tape, x);
  TensorPtr attn = self_attn_->Forward(tape, normed, normed, nullptr);
  if (rng != nullptr) attn = tape->Dropout(attn, dropout, rng);
  TensorPtr h = tape->Add(x, attn);
  TensorPtr ff = ffn2_->Forward(
      tape, tape->Gelu(ffn1_->Forward(tape, ln2_->Forward(tape, h))));
  if (rng != nullptr) ff = tape->Dropout(ff, dropout, rng);
  return tape->Add(h, ff);
}

DecoderLayer::DecoderLayer(const TransformerConfig& config, Rng* rng) {
  self_attn_ =
      std::make_unique<MultiHeadAttention>(config.d_model, config.num_heads,
                                           rng);
  cross_attn_ =
      std::make_unique<MultiHeadAttention>(config.d_model, config.num_heads,
                                           rng);
  ln1_ = std::make_unique<nn::LayerNormLayer>(config.d_model);
  ln2_ = std::make_unique<nn::LayerNormLayer>(config.d_model);
  ln3_ = std::make_unique<nn::LayerNormLayer>(config.d_model);
  ffn1_ = std::make_unique<nn::Linear>(config.d_model, config.ffn_dim, rng);
  ffn2_ = std::make_unique<nn::Linear>(config.ffn_dim, config.d_model, rng);
  AddChild(self_attn_.get());
  AddChild(cross_attn_.get());
  AddChild(ln1_.get());
  AddChild(ln2_.get());
  AddChild(ln3_.get());
  AddChild(ffn1_.get());
  AddChild(ffn2_.get());
}

TensorPtr DecoderLayer::Forward(Tape* tape, const TensorPtr& x,
                                const TensorPtr& memory,
                                const std::vector<float>* causal_mask,
                                float dropout, Rng* rng) const {
  TensorPtr normed = ln1_->Forward(tape, x);
  TensorPtr self_out =
      self_attn_->Forward(tape, normed, normed, causal_mask);
  if (rng != nullptr) self_out = tape->Dropout(self_out, dropout, rng);
  TensorPtr h = tape->Add(x, self_out);

  TensorPtr cross_out =
      cross_attn_->Forward(tape, ln2_->Forward(tape, h), memory, nullptr);
  if (rng != nullptr) cross_out = tape->Dropout(cross_out, dropout, rng);
  h = tape->Add(h, cross_out);

  TensorPtr ff = ffn2_->Forward(
      tape, tape->Gelu(ffn1_->Forward(tape, ln3_->Forward(tape, h))));
  if (rng != nullptr) ff = tape->Dropout(ff, dropout, rng);
  return tape->Add(h, ff);
}

TransformerSeq2Seq::TransformerSeq2Seq(const TransformerConfig& config,
                                       Rng* rng)
    : config_(config) {
  SERD_CHECK_GT(config.vocab_size, 0);
  token_embed_ =
      std::make_unique<nn::Embedding>(config.vocab_size, config.d_model, rng);
  pos_embed_ =
      std::make_unique<nn::Embedding>(config.max_len, config.d_model, rng);
  for (int i = 0; i < config.num_layers; ++i) {
    encoder_.push_back(std::make_unique<EncoderLayer>(config, rng));
    decoder_.push_back(std::make_unique<DecoderLayer>(config, rng));
  }
  final_ln_ = std::make_unique<nn::LayerNormLayer>(config.d_model);
  output_proj_ =
      std::make_unique<nn::Linear>(config.d_model, config.vocab_size, rng);
  AddChild(token_embed_.get());
  AddChild(pos_embed_.get());
  for (auto& l : encoder_) AddChild(l.get());
  for (auto& l : decoder_) AddChild(l.get());
  AddChild(final_ln_.get());
  AddChild(output_proj_.get());
}

namespace {

std::vector<int> ClampToMaxLen(const std::vector<int>& ids, int max_len) {
  if (static_cast<int>(ids.size()) <= max_len) return ids;
  std::vector<int> out(ids.begin(), ids.begin() + max_len - 1);
  out.push_back(CharVocab::kEos);
  return out;
}

std::vector<int> Positions(size_t len) {
  std::vector<int> pos(len);
  for (size_t i = 0; i < len; ++i) pos[i] = static_cast<int>(i);
  return pos;
}

std::vector<float> CausalMask(size_t t) {
  std::vector<float> mask(t * t, 0.0f);
  for (size_t i = 0; i < t; ++i) {
    for (size_t j = i + 1; j < t; ++j) mask[i * t + j] = -1e9f;
  }
  return mask;
}

}  // namespace

TensorPtr TransformerSeq2Seq::Encode(Tape* tape,
                                     const std::vector<int>& src_ids,
                                     float dropout, Rng* rng) const {
  auto ids = ClampToMaxLen(src_ids, config_.max_len);
  TensorPtr x = tape->Add(token_embed_->Forward(tape, ids),
                          pos_embed_->Forward(tape, Positions(ids.size())));
  if (rng != nullptr) x = tape->Dropout(x, dropout, rng);
  for (const auto& layer : encoder_) {
    x = layer->Forward(tape, x, dropout, rng);
  }
  return x;
}

TensorPtr TransformerSeq2Seq::Decode(Tape* tape,
                                     const std::vector<int>& tgt_ids,
                                     const TensorPtr& memory, float dropout,
                                     Rng* rng) const {
  TensorPtr x = tape->Add(token_embed_->Forward(tape, tgt_ids),
                          pos_embed_->Forward(tape, Positions(tgt_ids.size())));
  if (rng != nullptr) x = tape->Dropout(x, dropout, rng);
  std::vector<float> mask = CausalMask(tgt_ids.size());
  for (const auto& layer : decoder_) {
    x = layer->Forward(tape, x, memory, &mask, dropout, rng);
  }
  return output_proj_->Forward(tape, final_ln_->Forward(tape, x));
}

TensorPtr TransformerSeq2Seq::Loss(Tape* tape, const std::vector<int>& src_ids,
                                   const std::vector<int>& tgt_ids,
                                   Rng* train_rng) const {
  SERD_CHECK_GE(tgt_ids.size(), 2u) << "target must contain BOS and EOS";
  auto tgt = ClampToMaxLen(tgt_ids, config_.max_len);
  std::vector<int> decoder_input(tgt.begin(), tgt.end() - 1);
  std::vector<int> targets(tgt.begin() + 1, tgt.end());
  TensorPtr memory = Encode(tape, src_ids, config_.dropout, train_rng);
  TensorPtr logits =
      Decode(tape, decoder_input, memory, config_.dropout, train_rng);
  return tape->CrossEntropy(logits, targets, CharVocab::kPad);
}

std::vector<int> TransformerSeq2Seq::Generate(const std::vector<int>& src_ids,
                                              Rng* rng,
                                              float temperature) const {
  SERD_CHECK(rng != nullptr);
  SERD_CHECK_GT(temperature, 0.0f);
  Tape enc_tape;
  enc_tape.set_recording(false);
  TensorPtr memory = Encode(&enc_tape, src_ids, 0.0f, nullptr);

  // Strings in one column have comparable lengths; capping generation at
  // src length + slack keeps undertrained models (which rarely emit EOS)
  // from always decoding to max_len, the dominant online cost.
  const int length_cap = std::min<int>(
      config_.max_len, static_cast<int>(src_ids.size()) + 8);
  // Per-thread arena for the decode steps (the dominant online cost):
  // each step builds the same graph one token longer, so recycling the
  // previous step's tensors removes nearly all per-op allocation.
  // `memory` lives outside the arena (enc_tape has none), so the per-step
  // reset cannot touch it.
  thread_local nn::TensorArena decode_arena;
  std::vector<int> generated = {CharVocab::kBos};
  while (static_cast<int>(generated.size()) < length_cap) {
    Tape dec_tape;
    decode_arena.Reset();
    dec_tape.set_arena(&decode_arena);
    dec_tape.set_recording(false);
    TensorPtr logits = Decode(&dec_tape, generated, memory, 0.0f, nullptr);
    // Sample from the last row.
    const size_t v = logits->cols();
    const size_t last = logits->rows() - 1;
    std::vector<double> weights(v);
    double hi = -1e30;
    for (size_t c = 0; c < v; ++c) {
      hi = std::max(hi, static_cast<double>(logits->at(last, c)));
    }
    for (size_t c = 0; c < v; ++c) {
      weights[c] = std::exp((logits->at(last, c) - hi) / temperature);
    }
    // Never sample PAD, BOS, or UNK.
    weights[CharVocab::kPad] = 0.0;
    weights[CharVocab::kBos] = 0.0;
    weights[CharVocab::kUnk] = 0.0;
    int next = static_cast<int>(rng->Categorical(weights));
    if (next == CharVocab::kEos) break;
    generated.push_back(next);
  }
  return std::vector<int>(generated.begin() + 1, generated.end());
}

}  // namespace serd
