#include "seq2seq/kv_cache.h"

#include <algorithm>
#include <cmath>

#include "nn/kernels.h"
#include "seq2seq/transformer.h"

namespace serd {

namespace {

namespace k = nn::kernels;

/// y[out] = x[in] * W + b, the single-row mirror of Linear::Forward
/// (MatMul then per-row bias Add — identical kernel calls, so identical
/// rounding). `y` must not alias `x`.
void LinearRowInto(const nn::Linear& lin, const float* x, float* y) {
  const auto& w = lin.weight();
  const std::size_t in = w->rows(), out = w->cols();
  k::GemmNN(1, out, in, x, w->value().data(), y, /*accumulate=*/false);
  if (lin.bias() != nullptr) k::Add(out, y, lin.bias()->value().data(), y);
}

/// y[d] = LN(x[d]), the single-row mirror of LayerNormLayer::Forward at
/// inference (same kernel, same 1e-5 eps as Tape::LayerNorm's default).
void LayerNormRow(const nn::LayerNormLayer& ln, std::size_t d, const float* x,
                  float* y) {
  k::LayerNormRows(1, d, x, ln.gamma()->value().data(),
                   ln.beta()->value().data(), 1e-5f, y,
                   /*xhat=*/nullptr, /*inv_std=*/nullptr);
}

/// One query row against `len` cached K/V rows, all heads. `kbuf`/`vbuf`
/// are [*, d] row-major with the head's columns at offset h*head_dim, so
/// the score GEMM reads K transposed via strides (brs=1, bcs=d) and the
/// mix GEMM reads V directly (brs=d, bcs=1) — no copies. The scale is
/// applied after the score GEMM, matching the full path's
/// Scale(MatMul(...)) order.
void AttentionRow(int num_heads, int head_dim, int d, int len, const float* q,
                  const float* kbuf, const float* vbuf, float* scores,
                  float* out) {
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
  for (int h = 0; h < num_heads; ++h) {
    const std::size_t off = static_cast<std::size_t>(h) * head_dim;
    k::GemmStrided(1, len, head_dim, q + off, head_dim, 1, kbuf + off, 1, d,
                   scores, /*accumulate=*/false);
    k::ScaleCopy(len, scale, scores, scores);
    k::SoftmaxRows(1, len, scores, /*add_mask=*/nullptr, scores);
    k::GemmStrided(1, head_dim, len, scores, len, 1, vbuf + off, d, 1,
                   out + off, /*accumulate=*/false);
  }
}

}  // namespace

void KvCache::Reset(int num_layers, int d_model, int capacity) {
  layers_.resize(num_layers);
  const std::size_t bytes =
      static_cast<std::size_t>(capacity) * static_cast<std::size_t>(d_model);
  for (auto& layer : layers_) {
    if (layer.k.size() < bytes) layer.k.resize(bytes);
    if (layer.v.size() < bytes) layer.v.resize(bytes);
  }
  len_ = 0;
}

IncrementalDecoder::IncrementalDecoder(const TransformerSeq2Seq* model,
                                       EncoderMemoryPtr memory)
    : model_(model), memory_(std::move(memory)) {
  SERD_CHECK(model_ != nullptr);
  SERD_CHECK(memory_ != nullptr);
  SERD_CHECK_EQ(memory_->model_uid, model_->uid())
      << "encoder memory was built by a different model";
  const TransformerConfig& cfg = model_->config();
  SERD_CHECK_EQ(memory_->d_model, cfg.d_model);
  SERD_CHECK_EQ(memory_->cross.size(), model_->decoder_.size());
  cache_.Reset(cfg.num_layers, cfg.d_model, cfg.max_len);
  x_.resize(cfg.d_model);
  normed_.resize(cfg.d_model);
  q_.resize(cfg.d_model);
  concat_.resize(cfg.d_model);
  attn_.resize(cfg.d_model);
  h_.resize(cfg.d_model);
  scores_.resize(std::max(cfg.max_len, memory_->mem_len));
  ff_.resize(cfg.ffn_dim);
  logits_.resize(cfg.vocab_size);
}

void IncrementalDecoder::Restart() {
  const TransformerConfig& cfg = model_->config();
  cache_.Reset(cfg.num_layers, cfg.d_model, cfg.max_len);
}

int IncrementalDecoder::len() const { return cache_.len(); }

const float* IncrementalDecoder::Step(int token) {
  const TransformerConfig& cfg = model_->config_;
  const int d = cfg.d_model;
  const int pos = cache_.len();
  SERD_CHECK_LT(pos, cfg.max_len) << "decode position past max_len";
  SERD_CHECK(token >= 0 && token < cfg.vocab_size)
      << "token id out of range: " << token;

  // x = token_embed[token] + pos_embed[pos], row `pos` of the full path's
  // embedding sum.
  const float* tok_row = model_->token_embed_->table()->value().data() +
                         static_cast<std::size_t>(token) * d;
  const float* pos_row = model_->pos_embed_->table()->value().data() +
                         static_cast<std::size_t>(pos) * d;
  k::Add(d, tok_row, pos_row, x_.data());

  const int len = pos + 1;
  for (std::size_t l = 0; l < model_->decoder_.size(); ++l) {
    const DecoderLayer& layer = *model_->decoder_[l];

    // Causal self-attention: project the new row, append its K/V to the
    // cache, attend over positions [0, pos]. The full path's causal mask
    // drives the softmax weight of every position > pos to exactly 0
    // (expf underflow of the -1e9 logits), so restricting the extent to
    // `len` is bit-exact, not an approximation.
    const MultiHeadAttention& self = *layer.self_attn_;
    LayerNormRow(*layer.ln1_, d, x_.data(), normed_.data());
    LinearRowInto(*self.wq_, normed_.data(), q_.data());
    LinearRowInto(*self.wk_, normed_.data(),
                  cache_.k(l) + static_cast<std::size_t>(pos) * d);
    LinearRowInto(*self.wv_, normed_.data(),
                  cache_.v(l) + static_cast<std::size_t>(pos) * d);
    AttentionRow(self.num_heads_, self.head_dim_, d, len, q_.data(),
                 cache_.k(l), cache_.v(l), scores_.data(), concat_.data());
    LinearRowInto(*self.wo_, concat_.data(), attn_.data());
    k::Add(d, x_.data(), attn_.data(), h_.data());

    // Cross-attention over the precomputed encoder K/V.
    const MultiHeadAttention& cross = *layer.cross_attn_;
    const EncoderMemory::CrossKv& ckv = memory_->cross[l];
    LayerNormRow(*layer.ln2_, d, h_.data(), normed_.data());
    LinearRowInto(*cross.wq_, normed_.data(), q_.data());
    AttentionRow(cross.num_heads_, cross.head_dim_, d, memory_->mem_len,
                 q_.data(), ckv.k.data(), ckv.v.data(), scores_.data(),
                 concat_.data());
    LinearRowInto(*cross.wo_, concat_.data(), attn_.data());
    k::Add(d, h_.data(), attn_.data(), h_.data());

    // FFN.
    LayerNormRow(*layer.ln3_, d, h_.data(), normed_.data());
    LinearRowInto(*layer.ffn1_, normed_.data(), ff_.data());
    k::Gelu(ff_.size(), ff_.data(), ff_.data());
    LinearRowInto(*layer.ffn2_, ff_.data(), attn_.data());
    k::Add(d, h_.data(), attn_.data(), x_.data());
  }
  cache_.Advance();

  LayerNormRow(*model_->final_ln_, d, x_.data(), normed_.data());
  LinearRowInto(*model_->output_proj_, normed_.data(), logits_.data());
  return logits_.data();
}

}  // namespace serd
