#include "seq2seq/kv_cache.h"

#include <algorithm>
#include <cmath>

#include "nn/kernels.h"
#include "seq2seq/transformer.h"

namespace serd {

namespace {

namespace k = nn::kernels;

/// y[out] = x[in] * W + b, the single-row mirror of Linear::Forward
/// (MatMul then per-row bias Add — identical kernel calls, so identical
/// rounding). `y` must not alias `x`.
void LinearRowInto(const nn::Linear& lin, const float* x, float* y) {
  const auto& w = lin.weight();
  const std::size_t in = w->rows(), out = w->cols();
  k::GemmNN(1, out, in, x, w->value().data(), y, /*accumulate=*/false);
  if (lin.bias() != nullptr) k::Add(out, y, lin.bias()->value().data(), y);
}

/// y[d] = LN(x[d]), the single-row mirror of LayerNormLayer::Forward at
/// inference (same kernel, same 1e-5 eps as Tape::LayerNorm's default).
void LayerNormRow(const nn::LayerNormLayer& ln, std::size_t d, const float* x,
                  float* y) {
  k::LayerNormRows(1, d, x, ln.gamma()->value().data(),
                   ln.beta()->value().data(), 1e-5f, y,
                   /*xhat=*/nullptr, /*inv_std=*/nullptr);
}

/// One query row against `len` cached K/V rows, all heads. `kbuf`/`vbuf`
/// are [*, d] row-major with the head's columns at offset h*head_dim, so
/// the score GEMM reads K transposed via strides (brs=1, bcs=d) and the
/// mix GEMM reads V directly (brs=d, bcs=1) — no copies. The scale is
/// applied after the score GEMM, matching the full path's
/// Scale(MatMul(...)) order.
void AttentionRow(int num_heads, int head_dim, int d, int len, const float* q,
                  const float* kbuf, const float* vbuf, float* scores,
                  float* out) {
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
  for (int h = 0; h < num_heads; ++h) {
    const std::size_t off = static_cast<std::size_t>(h) * head_dim;
    k::GemmStrided(1, len, head_dim, q + off, head_dim, 1, kbuf + off, 1, d,
                   scores, /*accumulate=*/false);
    k::ScaleCopy(len, scale, scores, scores);
    k::SoftmaxRows(1, len, scores, /*add_mask=*/nullptr, scores);
    k::GemmStrided(1, head_dim, len, scores, len, 1, vbuf + off, d, 1,
                   out + off, /*accumulate=*/false);
  }
}

/// y[rows, out] = x[rows, in] * W + b, the M-row mirror of LinearRowInto:
/// one GEMM over all rows, then the same per-row bias Add. The GEMM driver
/// accumulates every output element in its own sequential chain over k, so
/// each row of `y` is bit-identical to a single-row LinearRowInto call.
void LinearRowsInto(const nn::Linear& lin, std::size_t rows, const float* x,
                    float* y) {
  const auto& w = lin.weight();
  const std::size_t in = w->rows(), out = w->cols();
  k::GemmNN(rows, out, in, x, w->value().data(), y, /*accumulate=*/false);
  if (lin.bias() != nullptr) {
    const float* bias = lin.bias()->value().data();
    for (std::size_t r = 0; r < rows; ++r) {
      k::Add(out, y + r * out, bias, y + r * out);
    }
  }
}

/// Routes one per-step projection of `rows` rows: the quantized kernel
/// when a reduced-precision copy is attached (QuantizedGemm's per-element
/// chains are m-independent like the fp32 driver, so lane batching stays
/// bit-exact per lane within a precision), the exact fp32 path otherwise.
void ProjectRows(const nn::QuantizedLinear* q, const nn::Linear& lin,
                 std::size_t rows, const float* x, float* y) {
  if (q != nullptr) {
    k::QuantizedGemm(q->w, q->bias.empty() ? nullptr : q->bias.data(), rows,
                     x, y);
    return;
  }
  LinearRowsInto(lin, rows, x, y);
}

/// y[rows, d] = LN(x[rows, d]) row-wise — LayerNormRows normalizes each
/// row independently, so this equals `rows` LayerNormRow calls.
void LayerNormRowsInto(const nn::LayerNormLayer& ln, std::size_t rows,
                       std::size_t d, const float* x, float* y) {
  k::LayerNormRows(rows, d, x, ln.gamma()->value().data(),
                   ln.beta()->value().data(), 1e-5f, y,
                   /*xhat=*/nullptr, /*inv_std=*/nullptr);
}

/// `m` query rows against one shared [len, d] K/V pair, all heads — the
/// M-row mirror of AttentionRow. Per head: one M-row score GEMM, one
/// softmax over [m, len], one M-row mix GEMM into the dense `mix`
/// scratch, then a copy of each row into its head-column slice of `out`
/// (the strided GEMM writes C densely, so the scatter is a copy, not
/// arithmetic). Row i is bit-identical to AttentionRow on q row i: the
/// GEMM driver's per-element chains ignore the row count, ScaleCopy is
/// elementwise, and SoftmaxRows is row-independent.
void AttentionRows(int num_heads, int head_dim, int d, int len, std::size_t m,
                   const float* q, const float* kbuf, const float* vbuf,
                   float* scores, float* mix, float* out) {
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
  for (int h = 0; h < num_heads; ++h) {
    const std::size_t off = static_cast<std::size_t>(h) * head_dim;
    k::GemmStrided(m, len, head_dim, q + off, d, 1, kbuf + off, 1, d,
                   scores, /*accumulate=*/false);
    k::ScaleCopy(m * static_cast<std::size_t>(len), scale, scores, scores);
    k::SoftmaxRows(m, len, scores, /*add_mask=*/nullptr, scores);
    k::GemmStrided(m, head_dim, len, scores, len, 1, vbuf + off, d, 1,
                   mix, /*accumulate=*/false);
    for (std::size_t i = 0; i < m; ++i) {
      std::copy(mix + i * head_dim, mix + (i + 1) * head_dim,
                out + i * d + off);
    }
  }
}

}  // namespace

void KvCache::Reset(int num_layers, int d_model, int capacity, int num_lanes) {
  layers_.resize(num_layers);
  lane_stride_ =
      static_cast<std::size_t>(capacity) * static_cast<std::size_t>(d_model);
  const std::size_t floats =
      lane_stride_ * static_cast<std::size_t>(num_lanes);
  for (auto& layer : layers_) {
    if (layer.k.size() < floats) layer.k.resize(floats);
    if (layer.v.size() < floats) layer.v.resize(floats);
  }
  len_ = 0;
}

IncrementalDecoder::IncrementalDecoder(const TransformerSeq2Seq* model,
                                       EncoderMemoryPtr memory)
    : model_(model), memory_(std::move(memory)) {
  SERD_CHECK(model_ != nullptr);
  SERD_CHECK(memory_ != nullptr);
  SERD_CHECK_EQ(memory_->model_uid, model_->uid())
      << "encoder memory was built by a different model";
  const TransformerConfig& cfg = model_->config();
  SERD_CHECK_EQ(memory_->d_model, cfg.d_model);
  SERD_CHECK_EQ(memory_->cross.size(), model_->decoder_.size());
  cache_.Reset(cfg.num_layers, cfg.d_model, cfg.max_len);
  x_.resize(cfg.d_model);
  normed_.resize(cfg.d_model);
  q_.resize(cfg.d_model);
  concat_.resize(cfg.d_model);
  attn_.resize(cfg.d_model);
  h_.resize(cfg.d_model);
  scores_.resize(std::max(cfg.max_len, memory_->mem_len));
  ff_.resize(cfg.ffn_dim);
  logits_.resize(cfg.vocab_size);
}

void IncrementalDecoder::Restart() {
  const TransformerConfig& cfg = model_->config();
  cache_.Reset(cfg.num_layers, cfg.d_model, cfg.max_len);
}

int IncrementalDecoder::len() const { return cache_.len(); }

const float* IncrementalDecoder::Step(int token) {
  const TransformerConfig& cfg = model_->config_;
  const int d = cfg.d_model;
  const int pos = cache_.len();
  SERD_CHECK_LT(pos, cfg.max_len) << "decode position past max_len";
  SERD_CHECK(token >= 0 && token < cfg.vocab_size)
      << "token id out of range: " << token;

  // x = token_embed[token] + pos_embed[pos], row `pos` of the full path's
  // embedding sum.
  const float* tok_row = model_->token_embed_->table()->value().data() +
                         static_cast<std::size_t>(token) * d;
  const float* pos_row = model_->pos_embed_->table()->value().data() +
                         static_cast<std::size_t>(pos) * d;
  k::Add(d, tok_row, pos_row, x_.data());

  const int len = pos + 1;
  for (std::size_t l = 0; l < model_->decoder_.size(); ++l) {
    const DecoderLayer& layer = *model_->decoder_[l];
    // Quantized projection weights for this layer, when attached. The KV
    // cache itself and everything outside the projections (LN, attention,
    // embeddings, logits) stays fp32 (DESIGN.md §5m).
    const QuantizedDecoderLayer* ql =
        model_->quant_ != nullptr ? &model_->quant_->layers[l] : nullptr;

    // Causal self-attention: project the new row, append its K/V to the
    // cache, attend over positions [0, pos]. The full path's causal mask
    // drives the softmax weight of every position > pos to exactly 0
    // (expf underflow of the -1e9 logits), so restricting the extent to
    // `len` is bit-exact, not an approximation.
    const MultiHeadAttention& self = *layer.self_attn_;
    LayerNormRow(*layer.ln1_, d, x_.data(), normed_.data());
    ProjectRows(ql ? &ql->self_wq : nullptr, *self.wq_, 1, normed_.data(),
                q_.data());
    ProjectRows(ql ? &ql->self_wk : nullptr, *self.wk_, 1, normed_.data(),
                cache_.k(l) + static_cast<std::size_t>(pos) * d);
    ProjectRows(ql ? &ql->self_wv : nullptr, *self.wv_, 1, normed_.data(),
                cache_.v(l) + static_cast<std::size_t>(pos) * d);
    AttentionRow(self.num_heads_, self.head_dim_, d, len, q_.data(),
                 cache_.k(l), cache_.v(l), scores_.data(), concat_.data());
    ProjectRows(ql ? &ql->self_wo : nullptr, *self.wo_, 1, concat_.data(),
                attn_.data());
    k::Add(d, x_.data(), attn_.data(), h_.data());

    // Cross-attention over the precomputed encoder K/V.
    const MultiHeadAttention& cross = *layer.cross_attn_;
    const EncoderMemory::CrossKv& ckv = memory_->cross[l];
    LayerNormRow(*layer.ln2_, d, h_.data(), normed_.data());
    ProjectRows(ql ? &ql->cross_wq : nullptr, *cross.wq_, 1, normed_.data(),
                q_.data());
    AttentionRow(cross.num_heads_, cross.head_dim_, d, memory_->mem_len,
                 q_.data(), ckv.k.data(), ckv.v.data(), scores_.data(),
                 concat_.data());
    ProjectRows(ql ? &ql->cross_wo : nullptr, *cross.wo_, 1, concat_.data(),
                attn_.data());
    k::Add(d, h_.data(), attn_.data(), h_.data());

    // FFN.
    LayerNormRow(*layer.ln3_, d, h_.data(), normed_.data());
    ProjectRows(ql ? &ql->ffn1 : nullptr, *layer.ffn1_, 1, normed_.data(),
                ff_.data());
    k::Gelu(ff_.size(), ff_.data(), ff_.data());
    ProjectRows(ql ? &ql->ffn2 : nullptr, *layer.ffn2_, 1, ff_.data(),
                attn_.data());
    k::Add(d, h_.data(), attn_.data(), x_.data());
  }
  cache_.Advance();

  LayerNormRow(*model_->final_ln_, d, x_.data(), normed_.data());
  LinearRowInto(*model_->output_proj_, normed_.data(), logits_.data());
  return logits_.data();
}

BatchedDecoder::BatchedDecoder(const TransformerSeq2Seq* model,
                               std::vector<EncoderMemoryPtr> memories)
    : model_(model), memories_(std::move(memories)) {
  SERD_CHECK(model_ != nullptr);
  SERD_CHECK(!memories_.empty());
  const TransformerConfig& cfg = model_->config();
  int max_mem = 0;
  for (const auto& mem : memories_) {
    SERD_CHECK(mem != nullptr);
    SERD_CHECK_EQ(mem->model_uid, model_->uid())
        << "encoder memory was built by a different model";
    SERD_CHECK_EQ(mem->d_model, cfg.d_model);
    SERD_CHECK_EQ(mem->cross.size(), model_->decoder_.size());
    max_mem = std::max(max_mem, mem->mem_len);
  }
  const std::size_t n = memories_.size();
  const std::size_t d = cfg.d_model;
  cache_.Reset(cfg.num_layers, cfg.d_model, cfg.max_len,
               static_cast<int>(n));
  x_.resize(n * d);
  normed_.resize(n * d);
  q_.resize(n * d);
  knew_.resize(n * d);
  vnew_.resize(n * d);
  concat_.resize(n * d);
  attn_.resize(n * d);
  h_.resize(n * d);
  scores_.resize(n * static_cast<std::size_t>(std::max(cfg.max_len, max_mem)));
  mix_.resize(n * d);
  ff_.resize(n * static_cast<std::size_t>(cfg.ffn_dim));
  logits_.resize(n * static_cast<std::size_t>(cfg.vocab_size));
  // Candidate decode hands every lane the same memory; detect that and
  // let cross-attention batch its score/mix GEMMs over all live rows.
  shared_memory_ = memories_[0].get();
  for (const auto& mem : memories_) {
    if (mem.get() != shared_memory_) {
      shared_memory_ = nullptr;
      break;
    }
  }
}

void BatchedDecoder::Restart() {
  const TransformerConfig& cfg = model_->config();
  cache_.Reset(cfg.num_layers, cfg.d_model, cfg.max_len,
               static_cast<int>(memories_.size()));
}

const float* BatchedDecoder::Step(const std::vector<int>& lanes,
                                  const std::vector<int>& tokens) {
  const TransformerConfig& cfg = model_->config_;
  const std::size_t d = cfg.d_model;
  const std::size_t m = lanes.size();
  SERD_CHECK_GT(m, 0u) << "batched step with no live lanes";
  SERD_CHECK_EQ(tokens.size(), m);
  const int pos = cache_.len();
  SERD_CHECK_LT(pos, cfg.max_len) << "decode position past max_len";

  // Row i of every scratch buffer belongs to lane lanes[i]. All live lanes
  // share position `pos`, so one positional-embedding row serves the batch.
  const float* pos_row = model_->pos_embed_->table()->value().data() +
                         static_cast<std::size_t>(pos) * d;
  for (std::size_t i = 0; i < m; ++i) {
    SERD_CHECK(lanes[i] >= 0 && lanes[i] < num_lanes())
        << "lane id out of range: " << lanes[i];
    SERD_CHECK(tokens[i] >= 0 && tokens[i] < cfg.vocab_size)
        << "token id out of range: " << tokens[i];
    const float* tok_row = model_->token_embed_->table()->value().data() +
                           static_cast<std::size_t>(tokens[i]) * d;
    k::Add(d, tok_row, pos_row, x_.data() + i * d);
  }

  const int len = pos + 1;
  for (std::size_t l = 0; l < model_->decoder_.size(); ++l) {
    const DecoderLayer& layer = *model_->decoder_[l];
    // Per-layer quantized projections when attached (see the single-lane
    // Step above) — m-row quantized calls stay bit-identical per row, so
    // the lockstep/oracle equivalence holds at every precision.
    const QuantizedDecoderLayer* ql =
        model_->quant_ != nullptr ? &model_->quant_->layers[l] : nullptr;

    // Causal self-attention: project all live rows in one GEMM per weight,
    // land each lane's fresh K/V row in that lane's cache slice, then
    // attend per lane (attention extents differ only across layers, not
    // lanes, but the score/mix GEMMs are single-query anyway).
    const MultiHeadAttention& self = *layer.self_attn_;
    LayerNormRowsInto(*layer.ln1_, m, d, x_.data(), normed_.data());
    ProjectRows(ql ? &ql->self_wq : nullptr, *self.wq_, m, normed_.data(),
                q_.data());
    ProjectRows(ql ? &ql->self_wk : nullptr, *self.wk_, m, normed_.data(),
                knew_.data());
    ProjectRows(ql ? &ql->self_wv : nullptr, *self.wv_, m, normed_.data(),
                vnew_.data());
    for (std::size_t i = 0; i < m; ++i) {
      const int lane = lanes[i];
      float* krow = cache_.k(l, lane) + static_cast<std::size_t>(pos) * d;
      float* vrow = cache_.v(l, lane) + static_cast<std::size_t>(pos) * d;
      std::copy(knew_.begin() + i * d, knew_.begin() + (i + 1) * d, krow);
      std::copy(vnew_.begin() + i * d, vnew_.begin() + (i + 1) * d, vrow);
      AttentionRow(self.num_heads_, self.head_dim_, static_cast<int>(d), len,
                   q_.data() + i * d, cache_.k(l, lane), cache_.v(l, lane),
                   scores_.data(), concat_.data() + i * d);
    }
    ProjectRows(ql ? &ql->self_wo : nullptr, *self.wo_, m, concat_.data(),
                attn_.data());
    k::Add(m * d, x_.data(), attn_.data(), h_.data());

    // Cross-attention over the precomputed encoder K/V: one batched
    // score/mix pass per head when every lane shares the memory, per-lane
    // single-query passes otherwise.
    const MultiHeadAttention& cross = *layer.cross_attn_;
    LayerNormRowsInto(*layer.ln2_, m, d, h_.data(), normed_.data());
    ProjectRows(ql ? &ql->cross_wq : nullptr, *cross.wq_, m, normed_.data(),
                q_.data());
    if (shared_memory_ != nullptr) {
      const EncoderMemory::CrossKv& ckv = shared_memory_->cross[l];
      AttentionRows(cross.num_heads_, cross.head_dim_, static_cast<int>(d),
                    shared_memory_->mem_len, m, q_.data(), ckv.k.data(),
                    ckv.v.data(), scores_.data(), mix_.data(),
                    concat_.data());
    } else {
      for (std::size_t i = 0; i < m; ++i) {
        const EncoderMemory& mem = *memories_[lanes[i]];
        const EncoderMemory::CrossKv& ckv = mem.cross[l];
        AttentionRow(cross.num_heads_, cross.head_dim_, static_cast<int>(d),
                     mem.mem_len, q_.data() + i * d, ckv.k.data(),
                     ckv.v.data(), scores_.data(), concat_.data() + i * d);
      }
    }
    ProjectRows(ql ? &ql->cross_wo : nullptr, *cross.wo_, m, concat_.data(),
                attn_.data());
    k::Add(m * d, h_.data(), attn_.data(), h_.data());

    // FFN.
    LayerNormRowsInto(*layer.ln3_, m, d, h_.data(), normed_.data());
    ProjectRows(ql ? &ql->ffn1 : nullptr, *layer.ffn1_, m, normed_.data(),
                ff_.data());
    k::Gelu(m * static_cast<std::size_t>(cfg.ffn_dim), ff_.data(), ff_.data());
    ProjectRows(ql ? &ql->ffn2 : nullptr, *layer.ffn2_, m, ff_.data(),
                attn_.data());
    k::Add(m * d, h_.data(), attn_.data(), x_.data());
  }
  cache_.Advance();

  LayerNormRowsInto(*model_->final_ln_, m, d, x_.data(), normed_.data());
  LinearRowsInto(*model_->output_proj_, m, normed_.data(), logits_.data());
  return logits_.data();
}

}  // namespace serd
