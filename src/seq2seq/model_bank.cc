#include "seq2seq/model_bank.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/timer.h"
#include "text/perturb.h"
#include "text/token.h"

namespace serd {

StringSynthesisBank::StringSynthesisBank(StringBankOptions options,
                                         StringSimFn sim)
    : options_(std::move(options)), sim_(std::move(sim)) {
  SERD_CHECK_GT(options_.num_buckets, 0);
  SERD_CHECK_GT(options_.num_candidates, 0);
  SERD_CHECK(sim_ != nullptr);
}

int StringSynthesisBank::BucketOf(double sim) const {
  double clamped = std::clamp(sim, 0.0, 1.0);
  int b = static_cast<int>(clamped * options_.num_buckets);
  return std::min(b, options_.num_buckets - 1);
}

Status StringSynthesisBank::Train(
    const std::vector<std::string>& background_corpus, Rng* rng) {
  if (background_corpus.size() < 2) {
    return Status::InvalidArgument(
        "background corpus needs at least 2 strings");
  }
  SERD_CHECK(rng != nullptr);

  // Word pool for augmentation and refinement.
  corpus_ = background_corpus;
  word_pool_.clear();
  for (const auto& s : corpus_) {
    for (auto& w : WordTokens(s)) word_pool_.push_back(std::move(w));
  }
  std::sort(word_pool_.begin(), word_pool_.end());
  word_pool_.erase(std::unique(word_pool_.begin(), word_pool_.end()),
                   word_pool_.end());

  std::vector<std::pair<std::string, std::string>> pairs;
  pairs.reserve(options_.random_pair_samples * 2);

  // (a) Random corpus pairs: populate the low-similarity region.
  for (int i = 0; i < options_.random_pair_samples; ++i) {
    const auto& a = corpus_[rng->UniformInt(corpus_.size())];
    const auto& b = corpus_[rng->UniformInt(corpus_.size())];
    if (a == b) continue;
    pairs.emplace_back(a, b);
  }

  // (b) Perturbation chains: (s, perturb^j(s)) walk from similarity ~1
  // downward, covering the mid/high buckets like near-duplicate crawl
  // entries do.
  const int chains = std::max(1, options_.random_pair_samples / 8);
  for (int i = 0; i < chains; ++i) {
    std::string base = corpus_[rng->UniformInt(corpus_.size())];
    std::string cur = base;
    for (int step = 0; step < 6; ++step) {
      cur = RandomPerturbation(cur, word_pool_, rng);
      if (cur.empty()) break;
      pairs.emplace_back(base, cur);
    }
  }
  return TrainFromPairs(pairs, rng);
}

Status StringSynthesisBank::TrainFromPairs(
    const std::vector<std::pair<std::string, std::string>>& pairs, Rng* rng) {
  SERD_CHECK(rng != nullptr);
  if (pairs.empty()) {
    return Status::InvalidArgument("no training pairs");
  }
  WallTimer timer;
  const int k = options_.num_buckets;

  // Bucket pairs by similarity (paper: divide into buckets, train M_i on
  // pairs whose similarity lies in I_i).
  std::vector<std::vector<std::pair<std::string, std::string>>> buckets(k);
  for (const auto& p : pairs) {
    double s = sim_(p.first, p.second);
    auto& bucket = buckets[BucketOf(s)];
    if (static_cast<int>(bucket.size()) < options_.max_pairs_per_bucket) {
      bucket.push_back(p);
    }
  }

  // Vocabulary over everything we may encode.
  std::vector<std::string> vocab_corpus;
  for (const auto& bucket : buckets) {
    for (const auto& p : bucket) {
      vocab_corpus.push_back(p.first);
      vocab_corpus.push_back(p.second);
    }
  }
  for (const auto& s : corpus_) vocab_corpus.push_back(s);
  vocab_.Fit(vocab_corpus);

  TransformerConfig cfg = options_.transformer;
  cfg.vocab_size = vocab_.size();

  models_.clear();
  models_.resize(k);
  stats_ = StringBankStats();
  stats_.pairs_per_bucket.assign(k, 0);
  stats_.bucket_trained.assign(k, false);
  stats_.bucket_hits.assign(k, 0);

  double total_eps = 0.0;
  int trained_models = 0;
  for (int b = 0; b < k; ++b) {
    stats_.pairs_per_bucket[b] = static_cast<int>(buckets[b].size());
    if (static_cast<int>(buckets[b].size()) < options_.min_pairs_per_bucket) {
      continue;  // untrained bucket -> fallback path at synthesis time
    }
    Rng model_rng(options_.train.seed + 31ULL * static_cast<uint64_t>(b));
    auto model = std::make_unique<TransformerSeq2Seq>(cfg, &model_rng);
    Seq2SeqTrainOptions train_opts = options_.train;
    train_opts.seed = options_.train.seed + 1000ULL * (b + 1);
    auto report = TrainSeq2Seq(model.get(), vocab_, buckets[b], train_opts);
    models_[b] = std::move(model);
    stats_.bucket_trained[b] = true;
    if (std::isfinite(report.epsilon)) {
      total_eps += report.epsilon;
      ++trained_models;
    }
  }
  stats_.mean_epsilon = trained_models > 0 ? total_eps / trained_models : 0.0;
  stats_.train_seconds = timer.Seconds();
  trained_ = true;
  set_decode_precision(options_.decode_precision);
  return Status::OK();
}

void StringSynthesisBank::set_decode_precision(nn::DecodePrecision precision) {
  options_.decode_precision = precision;
  for (auto& model : models_) {
    if (model != nullptr) model->QuantizeWeights(precision);
  }
}

Status StringSynthesisBank::RestoreTrained(
    CharVocab vocab, std::vector<std::string> corpus,
    std::vector<std::string> word_pool,
    std::vector<std::unique_ptr<TransformerSeq2Seq>> models,
    StringBankStats stats) {
  const size_t k = models.size();
  if (k == 0) {
    return Status::InvalidArgument("string bank restore: no buckets");
  }
  if (stats.pairs_per_bucket.size() != k || stats.bucket_trained.size() != k ||
      stats.bucket_hits.size() != k) {
    return Status::InvalidArgument(
        "string bank restore: stats vectors disagree with bucket count " +
        std::to_string(k));
  }
  for (size_t b = 0; b < k; ++b) {
    if (models[b] == nullptr) continue;
    if (models[b]->config().vocab_size != vocab.size()) {
      return Status::InvalidArgument(
          "string bank restore: bucket " + std::to_string(b) +
          " model vocab_size " +
          std::to_string(models[b]->config().vocab_size) +
          " != vocabulary size " + std::to_string(vocab.size()));
    }
  }
  options_.num_buckets = static_cast<int>(k);
  vocab_ = std::move(vocab);
  corpus_ = std::move(corpus);
  word_pool_ = std::move(word_pool);
  models_ = std::move(models);
  stats_ = std::move(stats);
  trained_ = true;
  // Models restored with a pre-quantized weight set attached (the artifact
  // load path) already match the requested precision, so QuantizeWeights
  // no-ops on them; any others quantize here.
  set_decode_precision(options_.decode_precision);
  return Status::OK();
}

namespace {

/// Fraction of a candidate's words drawn from a known word pool — a cheap
/// plausibility proxy that penalizes degenerate decoder outputs (random
/// character runs) without a second model.
double PoolWordFraction(const std::string& candidate,
                        const std::vector<std::string>& pool) {
  auto words = WordTokens(candidate);
  if (words.empty()) return 0.0;
  size_t known = 0;
  for (const auto& w : words) {
    known += std::binary_search(pool.begin(), pool.end(), w) ? 1 : 0;
  }
  return static_cast<double>(known) / static_cast<double>(words.size());
}

/// Per-thread LRU of encoder memories keyed by (model uid, source
/// string). The S2 rejection loop retries the same entity several times
/// and each retry re-synthesizes from the same source strings, so a
/// handful of entries absorbs nearly all re-encodes. Keying by the
/// process-unique model uid (not the pointer) means a freed model's
/// address being reused can never alias an entry; being thread-local, the
/// cache affects only speed, never values, so results stay deterministic
/// at any thread count.
struct EncoderMemoryCache {
  struct Entry {
    std::uint64_t uid = 0;
    std::string src;
    EncoderMemoryPtr mem;
    std::uint64_t stamp = 0;
  };
  static constexpr size_t kCapacity = 8;

  std::vector<Entry> entries;
  std::uint64_t tick = 0;

  EncoderMemoryPtr Lookup(std::uint64_t uid, const std::string& src) {
    for (auto& e : entries) {
      if (e.uid == uid && e.src == src) {
        e.stamp = ++tick;
        return e.mem;
      }
    }
    return nullptr;
  }

  void Insert(std::uint64_t uid, const std::string& src,
              EncoderMemoryPtr mem) {
    if (entries.size() < kCapacity) {
      entries.push_back({uid, src, std::move(mem), ++tick});
      return;
    }
    auto oldest = std::min_element(
        entries.begin(), entries.end(),
        [](const Entry& a, const Entry& b) { return a.stamp < b.stamp; });
    *oldest = {uid, src, std::move(mem), ++tick};
  }
};

thread_local EncoderMemoryCache t_encoder_cache;

}  // namespace

std::string StringSynthesisBank::SynthesizeWithModel(int bucket,
                                                     const std::string& s,
                                                     double target_sim,
                                                     Rng* rng) const {
  const auto& model = models_[bucket];
  auto src_ids = vocab_.Encode(s);
  std::string best;
  double best_score = 1e9;
  double best_err = 2.0;
  // Minimum similarity error over every accepted candidate, tracked
  // independently of the best-score candidate: a candidate can be on
  // target (tiny err) yet lose on score to one with a better pool
  // fraction, and that on-target sighting must still stop the loop.
  double min_err = 2.0;
  // Candidates are scored by similarity error plus a small implausibility
  // penalty. Early exit once a candidate is essentially on target:
  // decoding is the dominant online cost (paper Table IV).
  constexpr double kGoodEnough = 0.03;
  // A tripped cancel token ends the candidate draw exactly like an
  // on-target sighting would: the early-stop callback returns false and
  // the decoder abandons the remaining candidates/steps. The run-level
  // poll in SerdSynthesizer::Synthesize then discards whatever this call
  // returns, so cancellation never changes released bytes.
  auto keep_going = [&] {
    return min_err > kGoodEnough &&
           (cancel_ == nullptr || !cancel_->cancelled());
  };
  // Scores one decoded candidate; returns whether to keep drawing more.
  auto consider = [&](const std::vector<int>& out_ids) {
    std::string candidate = vocab_.Decode(out_ids);
    if (!candidate.empty()) {
      double pool_fraction = PoolWordFraction(candidate, word_pool_);
      // Fully degenerate decodes (random character runs) are dropped;
      // borderline ones pass through to the entity-level discriminator
      // rejection (paper Section V case 1).
      if (pool_fraction >= options_.min_pool_word_fraction) {
        double err = std::fabs(sim_(s, candidate) - target_sim);
        min_err = std::min(min_err, err);
        double score = err + 0.15 * (1.0 - pool_fraction);
        if (score < best_score) {
          best_score = score;
          best_err = err;
          best = std::move(candidate);
        }
      }
    }
    return keep_going();
  };
  GenerateStats gstats;
  if (options_.incremental_decode) {
    // Encode once per (model, source) and share across candidates and
    // rejection-loop retries; decode through the KV cache.
    EncoderMemoryPtr memory = t_encoder_cache.Lookup(model->uid(), s);
    if (memory == nullptr) {
      memory = model->EncodeMemory(src_ids);
      t_encoder_cache.Insert(model->uid(), s, memory);
      ++stats_.encoder_cache_misses;
      obs::Inc(obs::GetCounter(options_.metrics, "s2.encoder_cache_misses"));
    } else {
      ++stats_.encoder_cache_hits;
      obs::Inc(obs::GetCounter(options_.metrics, "s2.encoder_cache_hits"));
    }
    if (options_.batched_decode) {
      // One draw from the shared stream seeds the per-candidate streams;
      // the caller's RNG advances by exactly one draw per synthesis call,
      // independent of how many candidates or tokens get decoded.
      const uint64_t stream_seed = rng->Next();
      model->GenerateBatchLanes(
          memory, options_.num_candidates, stream_seed, options_.temperature,
          [&](int, const std::vector<int>& out_ids) {
            return consider(out_ids);
          },
          /*lockstep=*/options_.batched_lockstep, &gstats);
    } else {
      model->GenerateBatch(
          memory, options_.num_candidates, rng, options_.temperature,
          [&](int, const std::vector<int>& out_ids) {
            return consider(out_ids);
          },
          /*use_kv_cache=*/true, &gstats);
    }
  } else {
    // Reference implementation: per-candidate encode + full re-decode,
    // exactly the pre-KV-cache behaviour.
    for (int c = 0; c < options_.num_candidates && keep_going(); ++c) {
      auto out_ids =
          model->Generate(src_ids, rng, options_.temperature, &gstats);
      consider(out_ids);
    }
  }
  stats_.decode_steps += gstats.steps;
  stats_.decode_cached_steps += gstats.cached_steps;
  stats_.decode_quantized_steps += gstats.quantized_steps;
  obs::Inc(obs::GetCounter(options_.metrics, "s2.decode_steps"),
           static_cast<uint64_t>(gstats.steps));
  obs::Inc(obs::GetCounter(options_.metrics, "s2.decode_cached_steps"),
           static_cast<uint64_t>(gstats.cached_steps));
  obs::Inc(obs::GetCounter(options_.metrics, "s2.decode_quantized_steps"),
           static_cast<uint64_t>(gstats.quantized_steps));
  if (best.empty()) return FallbackSynthesize(s, target_sim, rng);
  if (best_err > options_.refine_threshold) {
    // The decoder missed the target: refine the candidate and also try a
    // pure perturbation-search synthesis, keeping whichever scores better.
    ++stats_.refined_calls;
    obs::Inc(obs::GetCounter(options_.metrics, "s2.bank_refined_calls"));
    std::string refined =
        HillClimbToSimilarity(s, best, target_sim, sim_, word_pool_, rng);
    std::string fallback = FallbackSynthesize(s, target_sim, rng);
    auto score_of = [&](const std::string& cand) {
      return std::fabs(sim_(s, cand) - target_sim) +
             0.15 * (1.0 - PoolWordFraction(cand, word_pool_));
    };
    best = score_of(refined) <= score_of(fallback) ? refined : fallback;
  }
  return best;
}

std::string StringSynthesisBank::FallbackSynthesize(const std::string& s,
                                                    double target_sim,
                                                    Rng* rng) const {
  // Seed the search from s for high targets and from an unrelated
  // background string for low targets, then climb toward the target.
  std::string start;
  if (target_sim >= 0.5 || corpus_.empty()) {
    start = s;
  } else {
    start = corpus_[rng->UniformInt(corpus_.size())];
  }
  return HillClimbToSimilarity(s, start, target_sim, sim_, word_pool_, rng);
}

std::string StringSynthesisBank::Synthesize(const std::string& s,
                                            double target_sim,
                                            Rng* rng) const {
  SERD_CHECK(rng != nullptr);
  ++stats_.synth_calls;
  obs::Inc(obs::GetCounter(options_.metrics, "s2.bank_synth_calls"));
  double target = std::clamp(target_sim, 0.0, 1.0);
  int bucket = trained_ ? BucketOf(target) : -1;
  int used = -1;
  if (trained_) {
    if (models_[bucket] != nullptr) {
      used = bucket;
    } else {
      // Nearest trained bucket, if any.
      for (int d = 1; d < options_.num_buckets && used < 0; ++d) {
        int lo = bucket - d, hi = bucket + d;
        if (lo >= 0 && models_[lo] != nullptr) {
          used = lo;
        } else if (hi < options_.num_buckets && models_[hi] != nullptr) {
          used = hi;
        }
      }
    }
  }
  if (used < 0) {
    ++stats_.fallback_calls;
    obs::Inc(obs::GetCounter(options_.metrics, "s2.bank_fallback_calls"));
    return FallbackSynthesize(s, target, rng);
  }
  ++stats_.bucket_hits[used];
  obs::Observe(
      obs::GetHistogram(options_.metrics, "s2.bank_bucket",
                        obs::LinearBounds(
                            0.0, static_cast<double>(options_.num_buckets - 1),
                            options_.num_buckets)),
      static_cast<double>(used));
  return SynthesizeWithModel(used, s, target, rng);
}

}  // namespace serd
