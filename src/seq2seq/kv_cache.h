#ifndef SERD_SEQ2SEQ_KV_CACHE_H_
#define SERD_SEQ2SEQ_KV_CACHE_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace serd {

class TransformerSeq2Seq;

/// Encoder output captured once per (model, source string) and shared by
/// every candidate decode of that source (TransformerSeq2Seq::GenerateBatch)
/// and by rejection-loop retries via the per-thread cache in
/// StringSynthesisBank. Besides the raw encoder memory it carries the
/// cross-attention key/value projections of every decoder layer, which
/// depend only on the memory and therefore never change across decode
/// steps or candidates. Immutable after EncodeMemory() returns (always
/// handled as EncoderMemoryPtr = shared_ptr<const ...>), so sharing across
/// threads is safe.
struct EncoderMemory {
  struct CrossKv {
    std::vector<float> k;  ///< [mem_len, d_model] = wk(memory)
    std::vector<float> v;  ///< [mem_len, d_model] = wv(memory)
  };

  std::uint64_t model_uid = 0;  ///< TransformerSeq2Seq::uid() that built it
  int mem_len = 0;              ///< encoded (clamped) source length
  int d_model = 0;
  int src_len = 0;  ///< unclamped source id count; drives the length cap
  std::vector<float> values;    ///< [mem_len, d_model] encoder output
  std::vector<CrossKv> cross;   ///< one entry per decoder layer
};

using EncoderMemoryPtr = std::shared_ptr<const EncoderMemory>;

/// Decode-step accounting for the obs counters (s2.decode_steps /
/// s2.decode_cached_steps / s2.decode_quantized_steps). One "step" = one
/// next-token logits row.
struct GenerateStats {
  long steps = 0;            ///< total decode steps taken
  long cached_steps = 0;     ///< steps served by the KV-cached path
  long quantized_steps = 0;  ///< cached steps whose projections ran int8/bf16
};

/// Per-layer self-attention K/V rows for in-flight decodes. Row t of
/// layer l holds wk/wv(LN1(x_t)) exactly as the full re-decode would
/// compute them for position t — each row is written once, when its token
/// is fed, and never touched again (causal masking is implicit: only
/// positions <= t exist in the cache at step t). The cache holds
/// `num_lanes` independent candidate decodes side by side (lane-major:
/// lane c's rows live at offset c * capacity * d_model); the single-lane
/// IncrementalDecoder uses lane 0, the token-lockstep BatchedDecoder one
/// lane per candidate. All lanes share the length counter because lanes
/// only ever advance together (a retired lane's rows simply stop being
/// read).
class KvCache {
 public:
  /// Sizes the buffers for `num_layers` layers of `num_lanes` lanes of
  /// `capacity` rows of `d_model` floats and rewinds to length 0. Buffer
  /// capacity is kept across calls, so restarting for a new candidate
  /// allocates nothing.
  void Reset(int num_layers, int d_model, int capacity, int num_lanes = 1);

  int len() const { return len_; }
  void Advance() { ++len_; }

  float* k(int layer, int lane = 0) {
    return layers_[layer].k.data() + static_cast<std::size_t>(lane) * lane_stride_;
  }
  float* v(int layer, int lane = 0) {
    return layers_[layer].v.data() + static_cast<std::size_t>(lane) * lane_stride_;
  }

 private:
  struct LayerKv {
    std::vector<float> k;  ///< [num_lanes, capacity, d_model]
    std::vector<float> v;
  };
  std::vector<LayerKv> layers_;
  std::size_t lane_stride_ = 0;  ///< capacity * d_model floats per lane
  int len_ = 0;
};

/// Inference-only incremental decoder: each Step() feeds one token and
/// produces the next-token logits row in O(T) attention work instead of
/// re-running the whole prefix (O(T^2) per step). Logits are bit-identical
/// to TransformerSeq2Seq's full re-decode at every step: all matrix work
/// routes through the same nn/kernels GEMM driver, whose per-element
/// accumulation chains do not depend on how many rows are computed at
/// once, and the full path's causal-mask softmax zeros exactly the
/// positions this cache never stores (see DESIGN.md section 5h).
class IncrementalDecoder {
 public:
  /// Binds to `model` (not owned; must outlive the decoder) and the
  /// encoder memory the decode attends over.
  IncrementalDecoder(const TransformerSeq2Seq* model, EncoderMemoryPtr memory);

  /// Rewinds to position 0 for a fresh candidate over the same memory,
  /// reusing all buffers.
  void Restart();

  /// Feeds `token` at the next position and returns the logits row
  /// [vocab_size] for the token after it. The pointer is valid until the
  /// next Step()/Restart(). Checks that the position stays below
  /// config().max_len.
  const float* Step(int token);

  /// Number of tokens fed so far.
  int len() const;

 private:
  const TransformerSeq2Seq* model_;
  EncoderMemoryPtr memory_;
  KvCache cache_;
  // Row-sized scratch, reused across steps and candidates.
  std::vector<float> x_;       // [d] residual stream
  std::vector<float> normed_;  // [d]
  std::vector<float> q_;       // [d]
  std::vector<float> concat_;  // [d] per-head attention outputs
  std::vector<float> attn_;    // [d] output-projected attention
  std::vector<float> h_;       // [d] post-self-attention residual
  std::vector<float> scores_;  // [max(max_len, mem_len)]
  std::vector<float> ff_;      // [ffn_dim]
  std::vector<float> logits_;  // [vocab_size]
};

/// Token-lockstep batched decoder: up to `memories.size()` candidate lanes
/// advance one position per Step(), with each layer's LayerNorm, Q/K/V/O
/// projections and FFN running as a single M-row kernel call over all live
/// lanes instead of M single-row chains. Per-lane results are bit-identical
/// to running IncrementalDecoder on each lane alone: every kernel involved
/// either works row-independently (LayerNormRows, SoftmaxRows, per-row bias
/// Add) or accumulates each output element in its own sequential chain over
/// k regardless of how many rows are computed at once (the GEMM driver), so
/// stacking rows never changes any element's rounding (DESIGN.md §5k).
///
/// Lanes all start at position 0 and retire permanently (EOS / length cap /
/// early stop); callers pass the currently-live lane subset to each Step(),
/// so the batch shrinks as candidates finish. One encoder memory per lane —
/// lanes may share a memory (candidate decode) or carry different ones
/// (cross-request batching on a warm pool).
class BatchedDecoder {
 public:
  /// Binds to `model` (not owned; must outlive the decoder) and one
  /// encoder memory per lane. All memories must come from `model`.
  BatchedDecoder(const TransformerSeq2Seq* model,
                 std::vector<EncoderMemoryPtr> memories);

  /// Rewinds every lane to position 0, reusing all buffers.
  void Restart();

  /// Feeds tokens[i] to lane lanes[i] at the shared next position and
  /// returns the [lanes.size(), vocab_size] logits matrix (row i = lane
  /// lanes[i]), valid until the next Step()/Restart(). `lanes` must be a
  /// subset of [0, num_lanes) with each lane at the shared position —
  /// i.e. present in every prior Step() since the last Restart().
  const float* Step(const std::vector<int>& lanes,
                    const std::vector<int>& tokens);

  /// Number of tokens fed to each live lane so far.
  int len() const { return cache_.len(); }
  int num_lanes() const { return static_cast<int>(memories_.size()); }

 private:
  const TransformerSeq2Seq* model_;
  std::vector<EncoderMemoryPtr> memories_;
  KvCache cache_;
  // [num_lanes, *] batched scratch, reused across steps; live rows are
  // packed to the front (row i of a Step belongs to lane lanes[i]).
  std::vector<float> x_;       // [n, d] residual stream
  std::vector<float> normed_;  // [n, d]
  std::vector<float> q_;       // [n, d]
  std::vector<float> knew_;    // [n, d] freshly projected K rows
  std::vector<float> vnew_;    // [n, d] freshly projected V rows
  std::vector<float> concat_;  // [n, d] per-head attention outputs
  std::vector<float> attn_;    // [n, d] output-projected attention
  std::vector<float> h_;       // [n, d] post-self-attention residual
  std::vector<float> scores_;  // [n, max(max_len, max mem_len)]
  std::vector<float> mix_;     // [n, head_dim] one head's context rows
  std::vector<float> ff_;      // [n, ffn_dim]
  std::vector<float> logits_;  // [n, vocab_size]
  /// Set when every lane carries the same EncoderMemory (the candidate-
  /// decode case): cross-attention then runs M-row score/mix GEMMs per
  /// head over the shared K/V instead of M single-query passes. Null when
  /// lanes carry distinct memories (per-lane fallback).
  const EncoderMemory* shared_memory_ = nullptr;
};

}  // namespace serd

#endif  // SERD_SEQ2SEQ_KV_CACHE_H_
