#ifndef SERD_SEQ2SEQ_KV_CACHE_H_
#define SERD_SEQ2SEQ_KV_CACHE_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace serd {

class TransformerSeq2Seq;

/// Encoder output captured once per (model, source string) and shared by
/// every candidate decode of that source (TransformerSeq2Seq::GenerateBatch)
/// and by rejection-loop retries via the per-thread cache in
/// StringSynthesisBank. Besides the raw encoder memory it carries the
/// cross-attention key/value projections of every decoder layer, which
/// depend only on the memory and therefore never change across decode
/// steps or candidates. Immutable after EncodeMemory() returns (always
/// handled as EncoderMemoryPtr = shared_ptr<const ...>), so sharing across
/// threads is safe.
struct EncoderMemory {
  struct CrossKv {
    std::vector<float> k;  ///< [mem_len, d_model] = wk(memory)
    std::vector<float> v;  ///< [mem_len, d_model] = wv(memory)
  };

  std::uint64_t model_uid = 0;  ///< TransformerSeq2Seq::uid() that built it
  int mem_len = 0;              ///< encoded (clamped) source length
  int d_model = 0;
  int src_len = 0;  ///< unclamped source id count; drives the length cap
  std::vector<float> values;    ///< [mem_len, d_model] encoder output
  std::vector<CrossKv> cross;   ///< one entry per decoder layer
};

using EncoderMemoryPtr = std::shared_ptr<const EncoderMemory>;

/// Decode-step accounting for the obs counters (s2.decode_steps /
/// s2.decode_cached_steps). One "step" = one next-token logits row.
struct GenerateStats {
  long steps = 0;         ///< total decode steps taken
  long cached_steps = 0;  ///< steps served by the KV-cached path
};

/// Per-layer self-attention K/V rows for one in-flight decode. Row t of
/// layer l holds wk/wv(LN1(x_t)) exactly as the full re-decode would
/// compute them for position t — each row is written once, when its token
/// is fed, and never touched again (causal masking is implicit: only
/// positions <= t exist in the cache at step t).
class KvCache {
 public:
  /// Sizes the buffers for `num_layers` layers of `capacity` rows of
  /// `d_model` floats and rewinds to length 0. Buffer capacity is kept
  /// across calls, so restarting for a new candidate allocates nothing.
  void Reset(int num_layers, int d_model, int capacity);

  int len() const { return len_; }
  void Advance() { ++len_; }

  float* k(int layer) { return layers_[layer].k.data(); }
  float* v(int layer) { return layers_[layer].v.data(); }

 private:
  struct LayerKv {
    std::vector<float> k;  ///< [capacity, d_model], rows [0, len) valid
    std::vector<float> v;
  };
  std::vector<LayerKv> layers_;
  int len_ = 0;
};

/// Inference-only incremental decoder: each Step() feeds one token and
/// produces the next-token logits row in O(T) attention work instead of
/// re-running the whole prefix (O(T^2) per step). Logits are bit-identical
/// to TransformerSeq2Seq's full re-decode at every step: all matrix work
/// routes through the same nn/kernels GEMM driver, whose per-element
/// accumulation chains do not depend on how many rows are computed at
/// once, and the full path's causal-mask softmax zeros exactly the
/// positions this cache never stores (see DESIGN.md section 5h).
class IncrementalDecoder {
 public:
  /// Binds to `model` (not owned; must outlive the decoder) and the
  /// encoder memory the decode attends over.
  IncrementalDecoder(const TransformerSeq2Seq* model, EncoderMemoryPtr memory);

  /// Rewinds to position 0 for a fresh candidate over the same memory,
  /// reusing all buffers.
  void Restart();

  /// Feeds `token` at the next position and returns the logits row
  /// [vocab_size] for the token after it. The pointer is valid until the
  /// next Step()/Restart(). Checks that the position stays below
  /// config().max_len.
  const float* Step(int token);

  /// Number of tokens fed so far.
  int len() const;

 private:
  const TransformerSeq2Seq* model_;
  EncoderMemoryPtr memory_;
  KvCache cache_;
  // Row-sized scratch, reused across steps and candidates.
  std::vector<float> x_;       // [d] residual stream
  std::vector<float> normed_;  // [d]
  std::vector<float> q_;       // [d]
  std::vector<float> concat_;  // [d] per-head attention outputs
  std::vector<float> attn_;    // [d] output-projected attention
  std::vector<float> h_;       // [d] post-self-attention residual
  std::vector<float> scores_;  // [max(max_len, mem_len)]
  std::vector<float> ff_;      // [ffn_dim]
  std::vector<float> logits_;  // [vocab_size]
};

}  // namespace serd

#endif  // SERD_SEQ2SEQ_KV_CACHE_H_
