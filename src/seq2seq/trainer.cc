#include "seq2seq/trainer.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "nn/optimizer.h"

namespace serd {

Seq2SeqTrainReport TrainSeq2Seq(
    TransformerSeq2Seq* model, const CharVocab& vocab,
    const std::vector<std::pair<std::string, std::string>>& pairs,
    const Seq2SeqTrainOptions& options) {
  SERD_CHECK(model != nullptr);
  SERD_CHECK(!pairs.empty());
  Rng rng(options.seed);
  Rng noise_rng = rng.Fork();
  Rng dropout_rng = rng.Fork();

  // Pre-encode all pairs.
  std::vector<std::pair<std::vector<int>, std::vector<int>>> encoded;
  encoded.reserve(pairs.size());
  for (const auto& [src, tgt] : pairs) {
    encoded.emplace_back(vocab.Encode(src), vocab.Encode(tgt));
  }

  nn::Adam optimizer(model->parameters(), options.learning_rate);
  PerExampleGradAccumulator accumulator(model->parameters(), options.dp);

  const size_t n = encoded.size();
  const size_t batch = std::min<size_t>(
      std::max(1, options.batch_size), n);

  Seq2SeqTrainReport report;
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;

  double last_epoch_loss = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    size_t epoch_examples = 0;
    for (size_t start = 0; start < n; start += batch) {
      size_t end = std::min(n, start + batch);
      accumulator.BeginBatch();
      optimizer.ZeroGrad();
      for (size_t i = start; i < end; ++i) {
        const auto& [src, tgt] = encoded[order[i]];
        nn::Tape tape;
        auto loss = model->Loss(&tape, src, tgt, &dropout_rng);
        epoch_loss += loss->value()[0];
        ++epoch_examples;
        tape.Backward(loss);
        accumulator.AccumulateExample();
      }
      accumulator.FinishBatch(end - start, &noise_rng);
      optimizer.Step();
      ++report.steps;
    }
    last_epoch_loss = epoch_loss / std::max<size_t>(1, epoch_examples);
    if (options.verbose) {
      SERD_LOG(kInfo) << "seq2seq epoch " << epoch << " loss "
                      << last_epoch_loss;
    }
  }
  report.final_loss = last_epoch_loss;

  if (options.dp.enabled && options.dp.noise_multiplier > 0.0) {
    double q = static_cast<double>(batch) / static_cast<double>(n);
    RdpAccountant accountant(std::min(1.0, q), options.dp.noise_multiplier);
    accountant.AddSteps(report.steps);
    report.epsilon = accountant.Epsilon(report.delta);
  } else {
    report.epsilon = std::numeric_limits<double>::infinity();
  }
  return report;
}

}  // namespace serd
