#include "seq2seq/trainer.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "nn/arena.h"
#include "nn/optimizer.h"
#include "obs/trace.h"
#include "runtime/parallel_for.h"
#include "runtime/sharded_rng.h"

namespace serd {

namespace {

/// Salt separating per-example dropout streams from other uses of the
/// training seed.
constexpr uint64_t kDropoutSalt = 0x5eedd40b0a5a17e5ULL;

}  // namespace

Seq2SeqTrainReport TrainSeq2Seq(
    TransformerSeq2Seq* model, const CharVocab& vocab,
    const std::vector<std::pair<std::string, std::string>>& pairs,
    const Seq2SeqTrainOptions& options) {
  SERD_CHECK(model != nullptr);
  SERD_CHECK(!pairs.empty());
  obs::TraceSpan train_span(options.metrics, "seq2seq.train");
  Rng rng(options.seed);
  Rng noise_rng = rng.Fork();
  // Dropout no longer draws from a shared sequential stream (each example
  // derives its own stream below), but the fork is kept so the shuffle
  // stream in `rng` is unchanged.
  (void)rng.Fork();

  // Pre-encode all pairs.
  std::vector<std::pair<std::vector<int>, std::vector<int>>> encoded;
  encoded.reserve(pairs.size());
  for (const auto& [src, tgt] : pairs) {
    encoded.emplace_back(vocab.Encode(src), vocab.Encode(tgt));
  }

  nn::Adam optimizer(model->parameters(), options.learning_rate);
  PerExampleGradAccumulator accumulator(model->parameters(), options.dp);

  const size_t n = encoded.size();
  const size_t batch = std::min<size_t>(
      std::max(1, options.batch_size), n);

  // Forward/backward replicas. Replica 0 is the trained model itself;
  // extra replicas are value-synced copies so concurrent Backward calls
  // never share gradient buffers. More replicas than examples per batch
  // would never all be in flight at once.
  const size_t executors =
      options.pool != nullptr ? options.pool->num_threads() + 1 : 1;
  const size_t num_replicas = std::max<size_t>(1, std::min(executors, batch));
  std::vector<std::unique_ptr<TransformerSeq2Seq>> extra_replicas;
  for (size_t r = 1; r < num_replicas; ++r) {
    Rng init_rng(options.seed + r);  // overwritten by the per-batch sync
    extra_replicas.push_back(
        std::make_unique<TransformerSeq2Seq>(model->config(), &init_rng));
  }
  auto replica_model = [&](size_t r) {
    return r == 0 ? model : extra_replicas[r - 1].get();
  };
  // One tensor arena per replica: a replica is held by exactly one worker
  // at a time, so the arena is never shared, and resetting it when the
  // replica is acquired recycles the previous example's intermediate
  // tensors (steady-state training allocates nothing per op).
  std::vector<nn::TensorArena> arenas(num_replicas);
  auto sync_replicas = [&]() {
    const auto& master = model->parameters();
    for (auto& rep : extra_replicas) {
      const auto& params = rep->parameters();
      SERD_CHECK_EQ(params.size(), master.size());
      for (size_t pi = 0; pi < master.size(); ++pi) {
        params[pi]->value() = master[pi]->value();
      }
    }
  };

  Seq2SeqTrainReport report;
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;

  // The accountant is a pure function of (q, sigma); building it up front
  // lets each epoch report the epsilon trajectory as it is spent.
  const bool dp_on = options.dp.enabled && options.dp.noise_multiplier > 0.0;
  const double q =
      std::min(1.0, static_cast<double>(batch) / static_cast<double>(n));
  std::unique_ptr<RdpAccountant> accountant;
  if (dp_on) {
    accountant =
        std::make_unique<RdpAccountant>(q, options.dp.noise_multiplier);
  }

  double last_epoch_loss = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    size_t epoch_examples = 0;
    for (size_t start = 0; start < n; start += batch) {
      const size_t end = std::min(n, start + batch);
      const size_t bs = end - start;
      accumulator.BeginBatch();
      optimizer.ZeroGrad();
      sync_replicas();

      // Each example runs on whichever replica is free, but its dropout
      // stream comes from its global example index and its clipped
      // gradient lands in its own slot, so nothing depends on the
      // example-to-thread assignment.
      std::vector<PerExampleGradAccumulator::ClippedGrad> slots(bs);
      std::vector<double> losses(bs, 0.0);
      std::vector<double> norms(bs, 0.0);
      std::vector<size_t> free_replicas(num_replicas);
      for (size_t r = 0; r < num_replicas; ++r) free_replicas[r] = r;
      std::mutex free_mu;

      runtime::ParallelFor(
          options.pool, 0, bs, 1, [&](size_t lo, size_t hi) {
            for (size_t k = lo; k < hi; ++k) {
              size_t rid;
              {
                std::lock_guard<std::mutex> lock(free_mu);
                SERD_CHECK(!free_replicas.empty());
                rid = free_replicas.back();
                free_replicas.pop_back();
              }
              TransformerSeq2Seq* m = replica_model(rid);
              const auto& [src, tgt] = encoded[order[start + k]];
              const uint64_t example_id =
                  static_cast<uint64_t>(epoch) * n + (start + k);
              Rng ex_rng(runtime::ShardedRng::DeriveSeed(
                  options.seed ^ kDropoutSalt, example_id));
              nn::Tape tape;
              arenas[rid].Reset();
              tape.set_arena(&arenas[rid]);
              auto loss = m->Loss(&tape, src, tgt, &ex_rng);
              losses[k] = loss->value()[0];
              tape.Backward(loss);
              norms[k] = accumulator.ClipInto(m->parameters(), &slots[k]);
              {
                std::lock_guard<std::mutex> lock(free_mu);
                free_replicas.push_back(rid);
              }
            }
          });

      // Ordered merge: the batch gradient sum is a function of the example
      // order alone.
      for (size_t k = 0; k < bs; ++k) {
        epoch_loss += losses[k];
        ++epoch_examples;
        if (options.dp.enabled && norms[k] > options.dp.clip_norm) {
          ++report.clipped_examples;
        }
        accumulator.MergeClipped(slots[k]);
      }
      report.total_examples += static_cast<long>(bs);
      accumulator.FinishBatch(bs, &noise_rng);
      optimizer.Step();
      ++report.steps;
    }
    last_epoch_loss = epoch_loss / std::max<size_t>(1, epoch_examples);
    report.epoch_losses.push_back(last_epoch_loss);
    if (accountant != nullptr) {
      accountant->AddSteps(report.steps - accountant->steps());
      double eps = accountant->Epsilon(report.delta);
      report.epoch_epsilons.push_back(eps);
      if (options.metrics != nullptr) {
        options.metrics
            ->histogram("dp.epsilon_per_epoch", obs::LinearBounds(0.0, 32.0, 16))
            ->Record(eps);
      }
    }
    obs::Observe(obs::GetHistogram(options.metrics, "seq2seq.epoch_loss",
                                   obs::LinearBounds(0.0, 16.0, 16)),
                 last_epoch_loss);
    if (options.verbose) {
      SERD_LOG(kInfo) << "seq2seq epoch " << epoch << " loss "
                      << last_epoch_loss;
    }
  }
  report.final_loss = last_epoch_loss;

  if (accountant != nullptr) {
    report.epsilon = accountant->Epsilon(report.delta);
  } else {
    report.epsilon = std::numeric_limits<double>::infinity();
  }
  if (options.metrics != nullptr) {
    obs::Inc(options.metrics->counter("seq2seq.steps"),
             static_cast<uint64_t>(report.steps));
    obs::Inc(options.metrics->counter("seq2seq.examples_total"),
             static_cast<uint64_t>(report.total_examples));
    obs::Inc(options.metrics->counter("seq2seq.examples_clipped"),
             static_cast<uint64_t>(report.clipped_examples));
    if (dp_on) options.metrics->gauge("dp.epsilon")->Set(report.epsilon);
  }
  return report;
}

}  // namespace serd
