#include "data/similarity.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "data/date.h"
#include "runtime/parallel_for.h"
#include "text/qgram.h"

namespace serd {

namespace {
/// One similarity vector costs a handful of q-gram set builds; small
/// batches stay serial, large ones split into fixed chunks (thread-count
/// independent boundaries).
constexpr size_t kBatchSimilarityGrain = 16;
}  // namespace

SimilaritySpec::SimilaritySpec(Schema schema, std::vector<ColumnStats> stats)
    : schema_(std::move(schema)), stats_(std::move(stats)) {
  SERD_CHECK_EQ(schema_.num_columns(), stats_.size());
}

SimilaritySpec SimilaritySpec::FromTables(
    const Schema& schema, const std::vector<const Table*>& tables) {
  return SimilaritySpec(schema, ComputeColumnStats(schema, tables));
}

bool SimilaritySpec::ParseValue(size_t col, const std::string& raw,
                                double* out) const {
  const ColumnType type = schema_.column(col).type;
  SERD_CHECK(type == ColumnType::kNumeric || type == ColumnType::kDate);
  if (raw.empty()) return false;
  if (type == ColumnType::kDate) {
    auto days = ParseDateToDays(raw);
    if (!days.ok()) return false;
    *out = static_cast<double>(days.value());
    return true;
  }
  char* end = nullptr;
  double v = std::strtod(raw.c_str(), &end);
  if (end == raw.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

std::string SimilaritySpec::FormatValue(size_t col, double v) const {
  const ColumnType type = schema_.column(col).type;
  if (type == ColumnType::kDate) {
    return FormatDaysAsDate(static_cast<int64_t>(std::llround(v)));
  }
  // Integer columns (years, counts) and values within rounding noise of
  // an integer render without a decimal point; everything else keeps two
  // decimals (prices). One rounding decision feeds one snprintf so the
  // integral flag and the near-integer test cannot disagree (previously
  // the value was rounded twice, and a non-integral column holding e.g.
  // 1999.9999999 fell through to the float path).
  const double rounded = std::round(v);
  char buf[32];
  if (stats_[col].integral || std::fabs(v - rounded) < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(rounded));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  }
  return buf;
}

double SimilaritySpec::Range(size_t col) const {
  return stats_[col].max_value - stats_[col].min_value;
}

double SimilaritySpec::ColumnSimilarity(size_t col, const std::string& va,
                                        const std::string& vb) const {
  SERD_CHECK_LT(col, schema_.num_columns());
  const ColumnType type = schema_.column(col).type;
  if (va.empty() && vb.empty()) return 1.0;
  if (va.empty() || vb.empty()) return 0.0;
  switch (type) {
    case ColumnType::kNumeric:
    case ColumnType::kDate: {
      double x, y;
      if (!ParseValue(col, va, &x) || !ParseValue(col, vb, &y)) return 0.0;
      double range = Range(col);
      if (range <= 0.0) return x == y ? 1.0 : 0.0;
      double s = 1.0 - std::fabs(x - y) / range;
      return std::max(0.0, std::min(1.0, s));
    }
    case ColumnType::kCategorical:
    case ColumnType::kText:
      return QgramJaccard(va, vb, 3);
  }
  return 0.0;
}

std::vector<Vec> SimilaritySpec::BatchSimilarityVectors(
    const Table& a, const Table& b,
    const std::vector<std::pair<size_t, size_t>>& pairs,
    runtime::ThreadPool* pool) const {
  std::vector<Vec> out(pairs.size());
  runtime::ParallelFor(
      pool, 0, pairs.size(), kBatchSimilarityGrain,
      [&](size_t lo, size_t hi) {
        for (size_t k = lo; k < hi; ++k) {
          out[k] = SimilarityVector(a.row(pairs[k].first),
                                    b.row(pairs[k].second));
        }
      });
  return out;
}

Vec SimilaritySpec::SimilarityVector(const Entity& a, const Entity& b) const {
  SERD_CHECK_EQ(a.values.size(), schema_.num_columns());
  SERD_CHECK_EQ(b.values.size(), schema_.num_columns());
  Vec x(schema_.num_columns());
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    x[c] = ColumnSimilarity(c, a.values[c], b.values[c]);
  }
  return x;
}

}  // namespace serd
