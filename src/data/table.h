#ifndef SERD_DATA_TABLE_H_
#define SERD_DATA_TABLE_H_

#include <string>
#include <vector>

#include "common/csv.h"
#include "common/status.h"
#include "data/schema.h"

namespace serd {

/// One entity (row). Values are stored as strings; typed interpretation
/// (numeric parse, date parse) is driven by the schema.
struct Entity {
  std::string id;
  std::vector<std::string> values;  ///< one value per schema column

  const std::string& value(size_t col) const { return values[col]; }
};

/// A relation: a schema plus rows. Tables are value types (copyable);
/// the synthesis loop clones and extends them freely.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  const Entity& row(size_t i) const {
    SERD_CHECK_LT(i, rows_.size());
    return rows_[i];
  }
  Entity& mutable_row(size_t i) {
    SERD_CHECK_LT(i, rows_.size());
    return rows_[i];
  }
  const std::vector<Entity>& rows() const { return rows_; }

  /// Appends a row; aborts if the value count does not match the schema.
  void Append(Entity entity);

  /// All values of one column (used for categorical domains and corpora).
  std::vector<std::string> ColumnValues(size_t col) const;

  /// Converts to/from CSV ("id" column first, then schema columns).
  CsvDocument ToCsv() const;
  static Result<Table> FromCsv(const Schema& schema, const CsvDocument& doc);

 private:
  Schema schema_;
  std::vector<Entity> rows_;
};

/// Per-column statistics used by similarity functions and synthesis:
/// min/max for numeric and date columns (computed over A ∪ B, as the paper
/// does for `year`), and the value domain for categorical columns.
struct ColumnStats {
  double min_value = 0.0;
  double max_value = 0.0;
  /// True when every parsed value of a numeric column is an integer
  /// (years, counts); synthesized values are then rounded to integers.
  bool integral = false;
  std::vector<std::string> domain;  ///< distinct values (categorical only)
};

/// Computes column statistics over the union of the rows of `tables`.
/// Numeric values that fail to parse are ignored for min/max purposes;
/// a column with no parsable value gets [0, 1].
std::vector<ColumnStats> ComputeColumnStats(
    const Schema& schema, const std::vector<const Table*>& tables);

}  // namespace serd

#endif  // SERD_DATA_TABLE_H_
