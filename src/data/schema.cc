#include "data/schema.h"

namespace serd {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kNumeric:
      return "numeric";
    case ColumnType::kCategorical:
      return "categorical";
    case ColumnType::kDate:
      return "date";
    case ColumnType::kText:
      return "text";
  }
  return "?";
}

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named " + name);
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace serd
