#include "data/schema.h"

namespace serd {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kNumeric:
      return "numeric";
    case ColumnType::kCategorical:
      return "categorical";
    case ColumnType::kDate:
      return "date";
    case ColumnType::kText:
      return "text";
  }
  return "?";
}

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named " + name);
}

uint64_t Schema::Fingerprint() const {
  // FNV-1a over each column's name bytes, a separator, and the type tag.
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ULL;
  };
  for (const ColumnSpec& col : columns_) {
    for (char ch : col.name) mix(static_cast<uint8_t>(ch));
    mix(0xFF);  // separates "ab"+"c" from "a"+"bc"
    mix(static_cast<uint8_t>(col.type));
  }
  return h;
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace serd
