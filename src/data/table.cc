#include "data/table.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "data/date.h"

namespace serd {

void Table::Append(Entity entity) {
  SERD_CHECK_EQ(entity.values.size(), schema_.num_columns())
      << "row width mismatch for entity " << entity.id;
  rows_.push_back(std::move(entity));
}

std::vector<std::string> Table::ColumnValues(size_t col) const {
  SERD_CHECK_LT(col, schema_.num_columns());
  std::vector<std::string> out;
  out.reserve(rows_.size());
  for (const auto& r : rows_) out.push_back(r.values[col]);
  return out;
}

CsvDocument Table::ToCsv() const {
  CsvDocument doc;
  doc.header.push_back("id");
  for (const auto& c : schema_.columns()) doc.header.push_back(c.name);
  for (const auto& r : rows_) {
    std::vector<std::string> row;
    row.reserve(r.values.size() + 1);
    row.push_back(r.id);
    for (const auto& v : r.values) row.push_back(v);
    doc.rows.push_back(std::move(row));
  }
  return doc;
}

Result<Table> Table::FromCsv(const Schema& schema, const CsvDocument& doc) {
  if (doc.header.empty() || doc.header[0] != "id") {
    return Status::InvalidArgument("CSV must start with an 'id' column");
  }
  if (doc.header.size() != schema.num_columns() + 1) {
    return Status::InvalidArgument("CSV column count does not match schema");
  }
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (doc.header[i + 1] != schema.column(i).name) {
      return Status::InvalidArgument("CSV header mismatch at column " +
                                     doc.header[i + 1]);
    }
  }
  Table t(schema);
  for (const auto& row : doc.rows) {
    Entity e;
    e.id = row[0];
    e.values.assign(row.begin() + 1, row.end());
    t.Append(std::move(e));
  }
  return t;
}

namespace {

bool ParseColumnValue(ColumnType type, const std::string& raw, double* out) {
  if (raw.empty()) return false;
  if (type == ColumnType::kDate) {
    auto days = ParseDateToDays(raw);
    if (!days.ok()) return false;
    *out = static_cast<double>(days.value());
    return true;
  }
  char* end = nullptr;
  double v = std::strtod(raw.c_str(), &end);
  if (end == raw.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

std::vector<ColumnStats> ComputeColumnStats(
    const Schema& schema, const std::vector<const Table*>& tables) {
  std::vector<ColumnStats> stats(schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const ColumnType type = schema.column(c).type;
    if (type == ColumnType::kNumeric || type == ColumnType::kDate) {
      bool seen = false;
      bool integral = true;
      double lo = 0.0, hi = 0.0;
      for (const Table* t : tables) {
        for (const auto& row : t->rows()) {
          double v;
          if (!ParseColumnValue(type, row.values[c], &v)) continue;
          if (v != std::floor(v)) integral = false;
          if (!seen) {
            lo = hi = v;
            seen = true;
          } else {
            lo = std::min(lo, v);
            hi = std::max(hi, v);
          }
        }
      }
      if (!seen) {
        lo = 0.0;
        hi = 1.0;
        integral = false;
      }
      stats[c].min_value = lo;
      stats[c].max_value = hi;
      stats[c].integral = seen && integral;
    } else if (type == ColumnType::kCategorical) {
      std::vector<std::string> domain;
      for (const Table* t : tables) {
        for (const auto& row : t->rows()) {
          if (!row.values[c].empty()) domain.push_back(row.values[c]);
        }
      }
      std::sort(domain.begin(), domain.end());
      domain.erase(std::unique(domain.begin(), domain.end()), domain.end());
      stats[c].domain = std::move(domain);
    }
  }
  return stats;
}

}  // namespace serd
