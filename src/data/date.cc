#include "data/date.h"

#include <cstdio>

namespace serd {
namespace {

// Howard Hinnant's civil-day algorithms.
int64_t DaysFromCivil(int64_t y, int64_t m, int64_t d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + doe - 719468;
}

void CivilFromDays(int64_t z, int64_t* y, int64_t* m, int64_t* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;
  const int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const int64_t mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = yy + (*m <= 2);
}

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

}  // namespace

Result<int64_t> ParseDateToDays(std::string_view s) {
  if (s.size() != 10 || s[4] != '-' || s[7] != '-') {
    return Status::InvalidArgument("date not in YYYY-MM-DD form: " +
                                   std::string(s));
  }
  for (size_t i : {0u, 1u, 2u, 3u, 5u, 6u, 8u, 9u}) {
    if (!IsDigit(s[i])) {
      return Status::InvalidArgument("non-digit in date: " + std::string(s));
    }
  }
  int64_t y = (s[0] - '0') * 1000 + (s[1] - '0') * 100 + (s[2] - '0') * 10 +
              (s[3] - '0');
  int64_t m = (s[5] - '0') * 10 + (s[6] - '0');
  int64_t d = (s[8] - '0') * 10 + (s[9] - '0');
  if (m < 1 || m > 12 || d < 1 || d > 31) {
    return Status::InvalidArgument("month/day out of range: " +
                                   std::string(s));
  }
  return DaysFromCivil(y, m, d);
}

std::string FormatDaysAsDate(int64_t days) {
  int64_t y, m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04lld-%02lld-%02lld",
                static_cast<long long>(y), static_cast<long long>(m),
                static_cast<long long>(d));
  return buf;
}

}  // namespace serd
