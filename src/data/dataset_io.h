#ifndef SERD_DATA_DATASET_IO_H_
#define SERD_DATA_DATASET_IO_H_

#include <string>

#include "data/er_dataset.h"

namespace serd {

/// On-disk layout of an ER dataset release (the artifact a data owner
/// actually publishes):
///   <dir>/tableA.csv     id column + schema columns
///   <dir>/tableB.csv     (omitted for self-join datasets)
///   <dir>/matches.csv    columns: idA, idB (entity ids, not row indexes)
///   <dir>/schema.csv     columns: name, type
/// Ids are used instead of row indexes so the files remain meaningful if
/// a consumer re-sorts the tables.
///
/// Writes `dataset` under `dir`, creating the directory tree if needed.
Status SaveDataset(const ERDataset& dataset, const std::string& dir);

/// Loads a dataset previously written by SaveDataset. `name` labels the
/// loaded dataset in reports.
Result<ERDataset> LoadDataset(const std::string& dir,
                              const std::string& name);

}  // namespace serd

#endif  // SERD_DATA_DATASET_IO_H_
