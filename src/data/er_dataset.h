#ifndef SERD_DATA_ER_DATASET_H_
#define SERD_DATA_ER_DATASET_H_

#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "data/similarity.h"
#include "data/table.h"

namespace serd {

/// An index pair (row in A, row in B).
struct PairRef {
  size_t a_idx;
  size_t b_idx;

  bool operator==(const PairRef& o) const {
    return a_idx == o.a_idx && b_idx == o.b_idx;
  }
};

/// An ER dataset E = (A, B, M, N) (paper Section II-A). M holds the
/// matching pairs; every other cross pair is non-matching. `name` labels
/// the dataset in reports; `self_join` marks one-table datasets
/// (Restaurant) where A and B are the same relation and the diagonal pair
/// (i, i) is excluded from N.
struct ERDataset {
  std::string name;
  Table a;
  Table b;
  std::vector<PairRef> matches;
  bool self_join = false;

  const Schema& schema() const { return a.schema(); }

  /// Number of cross pairs excluding the diagonal for self-joins.
  size_t NumTotalPairs() const;

  /// True if (i, j) is in M (linear scan; callers needing many lookups
  /// should build MatchSet()).
  bool IsMatch(size_t a_idx, size_t b_idx) const;

  /// Match keys packed as a_idx * |B| + b_idx for O(1) lookups.
  std::unordered_set<uint64_t> MatchSet() const;

  uint64_t PairKey(size_t a_idx, size_t b_idx) const {
    return static_cast<uint64_t>(a_idx) * b.size() + b_idx;
  }
};

/// A labeled entity pair for matcher training/testing.
struct LabeledPair {
  size_t a_idx;
  size_t b_idx;
  bool match;
};

/// A concrete labeled pair sample (train or test split) over a dataset.
struct LabeledPairSet {
  std::vector<LabeledPair> pairs;

  size_t NumMatches() const;
};

/// Builds a labeled pair set: all matching pairs plus `neg_per_pos`
/// sampled non-matching pairs per match (capped by availability). Half of
/// the negatives are sampled uniformly; the other half are "hard"
/// negatives that share a blocking signal (q-gram overlap on the first
/// text column) with some entity, mimicking the blocked candidate sets ER
/// systems train on. Self-join diagonals are excluded.
///
/// The pair sampling itself consumes `rng` sequentially (so the sampled
/// set is a pure function of the seed); only the per-entity blocking-gram
/// precompute runs on `pool`.
LabeledPairSet BuildLabeledPairs(const ERDataset& dataset, double neg_per_pos,
                                 Rng* rng,
                                 runtime::ThreadPool* pool = nullptr);

/// Splits a labeled pair set into train/test with the given test fraction,
/// stratified by label so both splits keep the match ratio.
void SplitPairs(const LabeledPairSet& all, double test_fraction, Rng* rng,
                LabeledPairSet* train, LabeledPairSet* test);

/// Similarity vectors X+ (matches) and X- (non-matches) of a labeled set,
/// in pair order. Vector computation batches onto `pool` when given.
void ComputeSimilarityVectors(const ERDataset& dataset,
                              const SimilaritySpec& spec,
                              const LabeledPairSet& pairs,
                              std::vector<Vec>* x_pos, std::vector<Vec>* x_neg,
                              runtime::ThreadPool* pool = nullptr);

}  // namespace serd

#endif  // SERD_DATA_ER_DATASET_H_
