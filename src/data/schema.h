#ifndef SERD_DATA_SCHEMA_H_
#define SERD_DATA_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace serd {

/// Attribute types the paper distinguishes (Section IV-B1): each type has
/// its own value-synthesis strategy and similarity function.
enum class ColumnType {
  kNumeric,      ///< e.g. year, price — min-max normalized |a-b| similarity
  kCategorical,  ///< e.g. venue, brand — finite domain, 3-gram Jaccard
  kDate,         ///< e.g. release date — treated like numeric over day counts
  kText,         ///< e.g. title, authors — 3-gram Jaccard, transformer synth
};

const char* ColumnTypeName(ColumnType type);

/// One attribute of the aligned schema.
struct ColumnSpec {
  std::string name;
  ColumnType type;
};

/// The aligned schema {C_1..C_l} shared by the A- and B-relations
/// (the paper assumes a one-to-one attribute correspondence).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnSpec> columns)
      : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const ColumnSpec& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnSpec>& columns() const { return columns_; }

  /// Index of the column named `name`, or NotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Order-sensitive FNV-1a digest of (name, type) per column. Two schemas
  /// compare equal iff their fingerprints match for practical purposes;
  /// the serving model pool uses it as a cache-key component so artifacts
  /// trained against a different schema can never be shared.
  uint64_t Fingerprint() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<ColumnSpec> columns_;
};

}  // namespace serd

#endif  // SERD_DATA_SCHEMA_H_
