#ifndef SERD_DATA_DATE_H_
#define SERD_DATA_DATE_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace serd {

/// Parses "YYYY-MM-DD" into a day count since 1970-01-01 (proleptic
/// Gregorian, civil-day algorithm). Returns InvalidArgument on malformed
/// input or out-of-range month/day.
Result<int64_t> ParseDateToDays(std::string_view s);

/// Formats a day count back to "YYYY-MM-DD".
std::string FormatDaysAsDate(int64_t days);

}  // namespace serd

#endif  // SERD_DATA_DATE_H_
