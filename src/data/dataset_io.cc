#include "data/dataset_io.h"

#include <filesystem>
#include <unordered_map>

#include "common/strings.h"

namespace serd {
namespace {

Result<ColumnType> ParseColumnType(const std::string& s) {
  if (s == "numeric") return ColumnType::kNumeric;
  if (s == "categorical") return ColumnType::kCategorical;
  if (s == "date") return ColumnType::kDate;
  if (s == "text") return ColumnType::kText;
  return Status::InvalidArgument("unknown column type: " + s);
}

}  // namespace

Status SaveDataset(const ERDataset& dataset, const std::string& dir) {
  // Create the release directory tree; a fresh --out path should work
  // without a prior mkdir.
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create dataset directory '" + dir +
                           "': " + ec.message());
  }

  // schema.csv
  CsvDocument schema_doc;
  schema_doc.header = {"name", "type", "self_join"};
  for (const auto& col : dataset.schema().columns()) {
    schema_doc.rows.push_back(
        {col.name, ColumnTypeName(col.type),
         dataset.self_join ? "1" : "0"});
  }
  SERD_RETURN_IF_ERROR(WriteCsvFile(dir + "/schema.csv", schema_doc));

  SERD_RETURN_IF_ERROR(
      WriteCsvFile(dir + "/tableA.csv", dataset.a.ToCsv()));
  if (!dataset.self_join) {
    SERD_RETURN_IF_ERROR(
        WriteCsvFile(dir + "/tableB.csv", dataset.b.ToCsv()));
  }

  CsvDocument matches_doc;
  matches_doc.header = {"idA", "idB"};
  for (const auto& m : dataset.matches) {
    if (m.a_idx >= dataset.a.size() || m.b_idx >= dataset.b.size()) {
      return Status::InvalidArgument("match references an invalid row");
    }
    matches_doc.rows.push_back(
        {dataset.a.row(m.a_idx).id, dataset.b.row(m.b_idx).id});
  }
  return WriteCsvFile(dir + "/matches.csv", matches_doc);
}

Result<ERDataset> LoadDataset(const std::string& dir,
                              const std::string& name) {
  auto schema_doc = ReadCsvFile(dir + "/schema.csv");
  SERD_RETURN_IF_ERROR(schema_doc.status());
  if (schema_doc->header != std::vector<std::string>({"name", "type",
                                                      "self_join"})) {
    return Status::InvalidArgument("bad schema.csv header");
  }
  std::vector<ColumnSpec> columns;
  bool self_join = false;
  for (const auto& row : schema_doc->rows) {
    auto type = ParseColumnType(row[1]);
    SERD_RETURN_IF_ERROR(type.status());
    columns.push_back({row[0], type.value()});
    self_join = row[2] == "1";
  }
  if (columns.empty()) {
    return Status::InvalidArgument("schema.csv has no columns");
  }
  Schema schema(std::move(columns));

  ERDataset dataset;
  dataset.name = name;
  dataset.self_join = self_join;

  auto a_doc = ReadCsvFile(dir + "/tableA.csv");
  SERD_RETURN_IF_ERROR(a_doc.status());
  auto a = Table::FromCsv(schema, a_doc.value());
  SERD_RETURN_IF_ERROR(a.status());
  dataset.a = std::move(a).value();

  if (self_join) {
    dataset.b = dataset.a;
  } else {
    auto b_doc = ReadCsvFile(dir + "/tableB.csv");
    SERD_RETURN_IF_ERROR(b_doc.status());
    auto b = Table::FromCsv(schema, b_doc.value());
    SERD_RETURN_IF_ERROR(b.status());
    dataset.b = std::move(b).value();
  }

  std::unordered_map<std::string, size_t> a_index, b_index;
  for (size_t i = 0; i < dataset.a.size(); ++i) {
    a_index[dataset.a.row(i).id] = i;
  }
  for (size_t i = 0; i < dataset.b.size(); ++i) {
    b_index[dataset.b.row(i).id] = i;
  }

  auto matches_doc = ReadCsvFile(dir + "/matches.csv");
  SERD_RETURN_IF_ERROR(matches_doc.status());
  for (const auto& row : matches_doc->rows) {
    auto ia = a_index.find(row[0]);
    auto ib = b_index.find(row[1]);
    if (ia == a_index.end() || ib == b_index.end()) {
      return Status::InvalidArgument("match references unknown id: " +
                                     row[0] + "," + row[1]);
    }
    dataset.matches.push_back({ia->second, ib->second});
  }
  return dataset;
}

}  // namespace serd
