#ifndef SERD_DATA_SIMILARITY_H_
#define SERD_DATA_SIMILARITY_H_

#include <string>
#include <utility>
#include <vector>

#include "common/matrix.h"
#include "data/schema.h"
#include "data/table.h"
#include "runtime/thread_pool.h"

namespace serd {

/// Computes per-column similarities and full similarity vectors between
/// entities, following the paper's experimental settings (Section VII):
///  - categorical & textual columns: 3-gram Jaccard,
///  - numeric columns: 1 - |c1-c2| / (max(C) - min(C)),
///  - date columns: as numeric over day counts.
///
/// The spec is bound to column statistics (min/max over A ∪ B and
/// categorical domains) computed once from the real dataset.
class SimilaritySpec {
 public:
  SimilaritySpec() = default;
  SimilaritySpec(Schema schema, std::vector<ColumnStats> stats);

  /// Builds a spec with stats computed over the given tables.
  static SimilaritySpec FromTables(const Schema& schema,
                                   const std::vector<const Table*>& tables);

  const Schema& schema() const { return schema_; }
  const std::vector<ColumnStats>& stats() const { return stats_; }
  size_t dimension() const { return schema_.num_columns(); }

  /// Similarity of the values `va`, `vb` on column `col`, in [0, 1].
  /// Unparsable numeric/date values and empty-vs-nonempty pairs yield 0;
  /// two empty values yield 1.
  double ColumnSimilarity(size_t col, const std::string& va,
                          const std::string& vb) const;

  /// The similarity vector x_(a,b) = (f_i(a[C_i], b[C_i]))_i.
  Vec SimilarityVector(const Entity& a, const Entity& b) const;

  /// Similarity vectors of many row pairs at once, `pairs[k]` = (row in
  /// `a`, row in `b`). Output slot k depends only on pair k, so the batch
  /// runs on `pool` (nullptr = serial) with identical results either way.
  std::vector<Vec> BatchSimilarityVectors(
      const Table& a, const Table& b,
      const std::vector<std::pair<size_t, size_t>>& pairs,
      runtime::ThreadPool* pool = nullptr) const;

  /// Parses a numeric or date column value into its double representation
  /// (day count for dates). Returns false on failure.
  bool ParseValue(size_t col, const std::string& raw, double* out) const;

  /// Formats a double back to a column value (date columns render as
  /// YYYY-MM-DD; numeric columns render with minimal digits).
  std::string FormatValue(size_t col, double v) const;

  /// max - min for a numeric/date column (>= 0; 0 means constant column).
  double Range(size_t col) const;

 private:
  Schema schema_;
  std::vector<ColumnStats> stats_;
};

}  // namespace serd

#endif  // SERD_DATA_SIMILARITY_H_
