#include "data/er_dataset.h"

#include <algorithm>

#include "runtime/parallel_for.h"
#include "text/qgram.h"

namespace serd {

size_t ERDataset::NumTotalPairs() const {
  size_t total = a.size() * b.size();
  if (self_join) total -= std::min(a.size(), b.size());
  return total;
}

bool ERDataset::IsMatch(size_t a_idx, size_t b_idx) const {
  for (const auto& m : matches) {
    if (m.a_idx == a_idx && m.b_idx == b_idx) return true;
  }
  return false;
}

std::unordered_set<uint64_t> ERDataset::MatchSet() const {
  std::unordered_set<uint64_t> set;
  set.reserve(matches.size() * 2);
  for (const auto& m : matches) set.insert(PairKey(m.a_idx, m.b_idx));
  return set;
}

size_t LabeledPairSet::NumMatches() const {
  size_t n = 0;
  for (const auto& p : pairs) n += p.match ? 1 : 0;
  return n;
}

namespace {

/// Blocking column: the text column with the longest average value (the
/// "title"-like column carries the most blocking signal; short code-like
/// columns such as model numbers block poorly). Falls back to column 0.
size_t BlockingColumn(const ERDataset& dataset) {
  const Schema& schema = dataset.schema();
  size_t best = 0;
  double best_len = -1.0;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (schema.column(c).type != ColumnType::kText) continue;
    double total = 0.0;
    size_t counted = std::min<size_t>(dataset.a.size(), 50);
    for (size_t i = 0; i < counted; ++i) {
      total += static_cast<double>(dataset.a.row(i).values[c].size());
    }
    double avg = counted > 0 ? total / counted : 0.0;
    if (avg > best_len) {
      best_len = avg;
      best = c;
    }
  }
  return best;
}

}  // namespace

LabeledPairSet BuildLabeledPairs(const ERDataset& dataset, double neg_per_pos,
                                 Rng* rng, runtime::ThreadPool* pool) {
  SERD_CHECK(rng != nullptr);
  LabeledPairSet out;
  auto match_set = dataset.MatchSet();

  for (const auto& m : dataset.matches) {
    out.pairs.push_back({m.a_idx, m.b_idx, true});
  }

  const size_t want_neg = static_cast<size_t>(
      neg_per_pos * static_cast<double>(std::max<size_t>(1, dataset.matches.size())));
  if (dataset.a.empty() || dataset.b.empty()) return out;

  const size_t max_neg =
      dataset.NumTotalPairs() >= dataset.matches.size()
          ? dataset.NumTotalPairs() - dataset.matches.size()
          : 0;
  const size_t target = std::min(want_neg, max_neg);

  std::unordered_set<uint64_t> used = match_set;

  // Hard negatives: for a random matched A-entity, find the B-entity with
  // the highest blocking-column q-gram similarity that is not its match.
  const size_t block_col = BlockingColumn(dataset);
  std::vector<std::vector<std::string>> b_grams(dataset.b.size());
  runtime::ParallelFor(pool, 0, dataset.b.size(), 64,
                       [&](size_t lo, size_t hi) {
                         for (size_t j = lo; j < hi; ++j) {
                           b_grams[j] =
                               QgramSet(dataset.b.row(j).values[block_col], 3);
                         }
                       });

  size_t added = 0;
  size_t hard_target = target / 2;
  size_t attempts = 0;
  while (added < hard_target && attempts < hard_target * 8) {
    ++attempts;
    size_t i = rng->UniformInt(dataset.a.size());
    auto a_grams = QgramSet(dataset.a.row(i).values[block_col], 3);
    // Scan a random window of B for the most similar non-match.
    double best = -1.0;
    size_t best_j = dataset.b.size();
    size_t window = std::min<size_t>(dataset.b.size(), 64);
    for (size_t w = 0; w < window; ++w) {
      size_t j = rng->UniformInt(dataset.b.size());
      if (dataset.self_join && i == j) continue;
      uint64_t key = dataset.PairKey(i, j);
      if (used.count(key)) continue;
      double s = JaccardOfSortedSets(a_grams, b_grams[j]);
      if (s > best) {
        best = s;
        best_j = j;
      }
    }
    if (best_j == dataset.b.size()) continue;
    used.insert(dataset.PairKey(i, best_j));
    out.pairs.push_back({i, best_j, false});
    ++added;
  }

  // Uniform random negatives for the remainder.
  attempts = 0;
  while (added < target && attempts < target * 20 + 100) {
    ++attempts;
    size_t i = rng->UniformInt(dataset.a.size());
    size_t j = rng->UniformInt(dataset.b.size());
    if (dataset.self_join && i == j) continue;
    uint64_t key = dataset.PairKey(i, j);
    if (used.count(key)) continue;
    used.insert(key);
    out.pairs.push_back({i, j, false});
    ++added;
  }
  return out;
}

void SplitPairs(const LabeledPairSet& all, double test_fraction, Rng* rng,
                LabeledPairSet* train, LabeledPairSet* test) {
  SERD_CHECK(rng != nullptr && train != nullptr && test != nullptr);
  SERD_CHECK(test_fraction >= 0.0 && test_fraction <= 1.0);
  train->pairs.clear();
  test->pairs.clear();
  std::vector<LabeledPair> pos, neg;
  for (const auto& p : all.pairs) (p.match ? pos : neg).push_back(p);
  rng->Shuffle(&pos);
  rng->Shuffle(&neg);
  auto split_into = [&](std::vector<LabeledPair>& v) {
    size_t n_test = static_cast<size_t>(test_fraction * v.size());
    for (size_t i = 0; i < v.size(); ++i) {
      (i < n_test ? test : train)->pairs.push_back(v[i]);
    }
  };
  split_into(pos);
  split_into(neg);
  rng->Shuffle(&train->pairs);
  rng->Shuffle(&test->pairs);
}

void ComputeSimilarityVectors(const ERDataset& dataset,
                              const SimilaritySpec& spec,
                              const LabeledPairSet& pairs,
                              std::vector<Vec>* x_pos,
                              std::vector<Vec>* x_neg,
                              runtime::ThreadPool* pool) {
  SERD_CHECK(x_pos != nullptr && x_neg != nullptr);
  x_pos->clear();
  x_neg->clear();
  std::vector<std::pair<size_t, size_t>> refs;
  refs.reserve(pairs.pairs.size());
  for (const auto& p : pairs.pairs) refs.emplace_back(p.a_idx, p.b_idx);
  std::vector<Vec> vectors =
      spec.BatchSimilarityVectors(dataset.a, dataset.b, refs, pool);
  for (size_t k = 0; k < pairs.pairs.size(); ++k) {
    (pairs.pairs[k].match ? x_pos : x_neg)
        ->push_back(std::move(vectors[k]));
  }
}

}  // namespace serd
