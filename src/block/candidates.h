#ifndef SERD_BLOCK_CANDIDATES_H_
#define SERD_BLOCK_CANDIDATES_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "block/qgram_index.h"
#include "runtime/thread_pool.h"

namespace serd::block {

/// Deduplicated candidate pairs in CSR form over the probe rows: probe row
/// i's candidates are cols[offsets[i], offsets[i+1]), ascending. Flat
/// positions therefore enumerate pairs in ascending (i, j) order — exactly
/// the order of the exact full scan, which is what keeps the blocked match
/// list bit-identical to the exact one whenever recall is 1.
struct CandidateSet {
  std::vector<size_t> offsets;  ///< size = probe rows + 1
  std::vector<uint32_t> cols;   ///< flat indexed-row ids

  size_t num_pairs() const { return cols.size(); }

  /// The (probe row, indexed row) pair at flat position `pos`.
  std::pair<size_t, size_t> PairAt(size_t pos) const;

  /// Membership test by binary search inside probe row i's slice.
  bool Contains(size_t i, uint32_t j) const;
};

/// Generates the candidate set of every probe row against `index`. Probe
/// rows run on `pool` (chunk results land in per-row slots, so the output
/// is bit-identical for any thread count, including pool == nullptr).
/// `probe_grams(row, col)` returns the sorted hashed gram set of the probe
/// row's col-th indexed column (same column order the index was built
/// with).
CandidateSet GenerateCandidates(const QgramIndex& index,
                                size_t num_probe_rows,
                                const QgramIndex::GramAccessor& probe_grams,
                                runtime::ThreadPool* pool = nullptr);

/// `k` distinct values sampled uniformly from [0, n) without replacement
/// (Floyd's algorithm: exactly k UniformInt draws), returned sorted
/// ascending. A pure function of (n, k, seed). Replaces the old
/// evenly-spaced stride subsample of the S3 label cap, which was a biased,
/// non-uniform sample of the pair space (it could never pick two adjacent
/// pairs, so any locality in the pair stream skewed the labeled sample).
std::vector<size_t> SampleDistinctSorted(size_t n, size_t k, uint64_t seed);

}  // namespace serd::block

#endif  // SERD_BLOCK_CANDIDATES_H_
