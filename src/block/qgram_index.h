#ifndef SERD_BLOCK_QGRAM_INDEX_H_
#define SERD_BLOCK_QGRAM_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace serd::block {

/// Knobs of the q-gram blocking layer (DESIGN.md Section 5j).
struct BlockOptions {
  /// Stop-gram pruning: a gram whose posting list covers more than this
  /// fraction of the indexed rows is dropped from the index. High-frequency
  /// grams ("the", a shared category value) connect nearly every cross pair
  /// while carrying almost no similarity signal, so they dominate candidate
  /// generation cost without improving recall. The default 1.0 disables
  /// pruning: in the jaccard_tau tier (the default), pruning *inflates*
  /// candidates — each probe stop gram loosens the adaptive threshold via
  /// the slack term s — so the unpruned index is both exact and smaller
  /// (measured in `bench_blocking --sweep`, DESIGN.md 5j).
  double max_df_frac = 1.0;
  /// Floor on the document-frequency threshold, so tiny tables (where a
  /// 5% frequency is 2 rows) are not pruned into losing real signal. The
  /// effective threshold is max(min_df_rows, ceil(max_df_frac * rows)).
  size_t min_df_rows = 16;
  /// A probe row becomes a candidate pair with an indexed row when they
  /// share at least this many surviving grams (summed across indexed
  /// columns). 1 is the loosest (any shared non-stop gram); larger values
  /// prune harder at some recall cost. Ignored when jaccard_tau > 0.
  int min_shared_grams = 1;
  /// Adaptive per-column Jaccard-threshold mode (the default tier). When
  /// > 0, a probe row p and indexed row r become a candidate iff on some
  /// indexed column their surviving shared-gram count o clears
  ///   ceil(tau / (1 + tau) * (g + G)) - s
  /// where g and G are the column's full probe/indexed gram counts and s
  /// is the number of probe grams pruned as stop grams. The bound is the
  /// exact integer form of "full q-gram Jaccard >= tau is still possible":
  /// J >= tau  <=>  o_full >= tau/(1+tau) * (g+G), and every shared stop
  /// gram is one of the probe's s stop grams, so o_full <= o + s.
  /// Guarantee: every pair whose q-gram Jaccard reaches tau on some
  /// nonempty indexed column is generated, for ANY stop-gram pruning
  /// level (pruning only loosens the threshold via s, never drops pairs).
  /// The threshold is clamped to >= 1: a pair sharing no surviving gram
  /// at all is only reachable when its overlap lives entirely in stop
  /// grams, which the sampled recall estimator (core S3) watches for.
  /// 0 disables the tier (min_shared_grams counting applies instead).
  /// Default 0.35: over every exact-scan match at scale 1.0 the minimum
  /// best-column Jaccard is 0.442 (DBLP-ACM), 1.000 (Restaurant), 1.000
  /// (Walmart-Amazon) — comfortably above tau (bench_blocking --rarity).
  double jaccard_tau = 0.35;
  /// Optional prefix-filter tier. When > 0, each probe column contributes
  /// only its (g - ceil(tau * g) + 1) globally-rarest grams (g = column
  /// gram count, tau = this threshold) instead of all of them. Guarantee
  /// (DESIGN.md 5j): with min_shared_grams == 1, every pair whose surviving
  /// per-column q-gram Jaccard reaches tau on some indexed column is still
  /// generated — a missed pair has overlap <= ceil(tau*g) - 1 < tau*g on
  /// every column, hence Jaccard < tau. 0 disables the tier (all surviving
  /// grams are probed). Ignored when jaccard_tau > 0.
  double prefix_jaccard = 0.0;
};

/// Build/coverage statistics of one index (feeds the s3.block_* metrics).
struct IndexStats {
  size_t rows = 0;
  size_t indexed_columns = 0;
  size_t total_postings = 0;    ///< (gram, row) pairs before pruning
  size_t distinct_grams = 0;    ///< distinct (column, gram) keys seen
  size_t stop_grams = 0;        ///< distinct keys pruned by frequency
  size_t pruned_postings = 0;   ///< postings dropped with the stop grams
  size_t df_threshold = 0;      ///< resolved max posting-list length
};

/// Inverted index over hashed q-gram profiles: (column, gram hash) ->
/// posting list of row ids, with stop-gram pruning. Rows are supplied
/// through an accessor so the index has no dependency on how callers store
/// their digests (the S3 path feeds CachedSimilarity::Digest columns; the
/// tests feed raw vectors).
///
/// Determinism: the index is a pure function of (rows, options) — build
/// order, probe results, and all statistics are identical for any thread
/// count (the build itself is single-threaded; candidate generation
/// parallelism lives in candidates.h).
class QgramIndex {
 public:
  /// Returns the sorted hashed gram set of (row, col); col indexes the
  /// caller's list of indexed columns, not the schema.
  using GramAccessor =
      std::function<const std::vector<uint32_t>&(size_t row, size_t col)>;

  static QgramIndex Build(size_t num_rows, size_t num_cols,
                          const GramAccessor& grams,
                          const BlockOptions& options);

  /// Reusable per-thread probe state: a counts array over the indexed rows
  /// plus the list of rows touched by the current probe. Candidates()
  /// leaves both cleared, so one Scratch serves any number of sequential
  /// probes without re-zeroing O(rows) memory.
  struct Scratch {
    std::vector<uint16_t> counts;
    std::vector<uint32_t> touched;
    /// (df, key) pairs of the probe's grams, used by the prefix tier.
    std::vector<std::pair<uint64_t, uint64_t>> ranked;
  };

  /// Appends to `out` the ascending row ids sharing at least
  /// min_shared_grams surviving grams with the probe. `probe[col]` is the
  /// sorted hashed gram set of the probe row's col-th indexed column.
  void Candidates(const std::vector<const std::vector<uint32_t>*>& probe,
                  Scratch* scratch, std::vector<uint32_t>* out) const;

  size_t num_rows() const { return stats_.rows; }
  const IndexStats& stats() const { return stats_; }
  const BlockOptions& options() const { return options_; }

  /// Posting-list length of a (column, gram) key; 0 when absent or pruned.
  size_t PostingCount(size_t col, uint32_t gram) const;

 private:
  struct Slice {
    uint32_t begin = 0;
    uint32_t length = 0;
  };

  static uint64_t Key(size_t col, uint32_t gram) {
    return (static_cast<uint64_t>(col) << 32) | gram;
  }

  BlockOptions options_;
  IndexStats stats_;
  /// Surviving posting lists, concatenated; each list holds ascending rows.
  std::vector<uint32_t> rows_;
  std::unordered_map<uint64_t, Slice> buckets_;
  /// Keys pruned by frequency; the jaccard_tau tier's slack term counts a
  /// probe's stop grams here (distinct from never-indexed grams, which no
  /// indexed row can share).
  std::unordered_set<uint64_t> stop_keys_;
  /// [col][row] -> the row's full (pre-pruning) gram count, the G of the
  /// jaccard_tau threshold.
  std::vector<std::vector<uint32_t>> col_row_grams_;
};

}  // namespace serd::block

#endif  // SERD_BLOCK_QGRAM_INDEX_H_
