#include "block/qgram_index.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace serd::block {

QgramIndex QgramIndex::Build(size_t num_rows, size_t num_cols,
                             const GramAccessor& grams,
                             const BlockOptions& options) {
  QgramIndex index;
  index.options_ = options;
  index.stats_.rows = num_rows;
  index.stats_.indexed_columns = num_cols;
  SERD_CHECK(num_rows <= UINT32_MAX) << "index row ids are 32-bit";

  // Collect (key, row) postings, then sort: the sorted run of each key is
  // its posting list with rows already ascending, so the CSR layout falls
  // out of one pass. Sorting is O(P log P) on P postings — the whole build
  // stays linear in the table's text volume, never in the pair count.
  std::vector<std::pair<uint64_t, uint32_t>> postings;
  index.col_row_grams_.assign(num_cols, std::vector<uint32_t>(num_rows, 0));
  for (size_t row = 0; row < num_rows; ++row) {
    for (size_t col = 0; col < num_cols; ++col) {
      const std::vector<uint32_t>& set = grams(row, col);
      index.col_row_grams_[col][row] = static_cast<uint32_t>(set.size());
      for (uint32_t gram : set) {
        postings.emplace_back(Key(col, gram), static_cast<uint32_t>(row));
      }
    }
  }
  index.stats_.total_postings = postings.size();
  std::sort(postings.begin(), postings.end());

  const size_t df_threshold = std::max(
      options.min_df_rows,
      static_cast<size_t>(
          std::ceil(options.max_df_frac * static_cast<double>(num_rows))));
  index.stats_.df_threshold = df_threshold;

  index.rows_.reserve(postings.size());
  for (size_t i = 0; i < postings.size();) {
    size_t j = i;
    while (j < postings.size() && postings[j].first == postings[i].first) ++j;
    const size_t df = j - i;
    ++index.stats_.distinct_grams;
    if (df > df_threshold) {
      ++index.stats_.stop_grams;
      index.stats_.pruned_postings += df;
      index.stop_keys_.insert(postings[i].first);
    } else {
      Slice slice;
      slice.begin = static_cast<uint32_t>(index.rows_.size());
      slice.length = static_cast<uint32_t>(df);
      for (size_t k = i; k < j; ++k) index.rows_.push_back(postings[k].second);
      index.buckets_.emplace(postings[i].first, slice);
    }
    i = j;
  }
  return index;
}

size_t QgramIndex::PostingCount(size_t col, uint32_t gram) const {
  auto it = buckets_.find(Key(col, gram));
  return it == buckets_.end() ? 0 : it->second.length;
}

void QgramIndex::Candidates(
    const std::vector<const std::vector<uint32_t>*>& probe, Scratch* scratch,
    std::vector<uint32_t>* out) const {
  SERD_CHECK_EQ(probe.size(), stats_.indexed_columns);
  out->clear();
  if (scratch->counts.size() < stats_.rows) {
    scratch->counts.assign(stats_.rows, 0);
  }
  scratch->touched.clear();

  const int min_shared = std::max(1, options_.min_shared_grams);
  auto probe_key = [&](uint64_t key) {
    auto it = buckets_.find(key);
    if (it == buckets_.end()) return;
    const Slice& slice = it->second;
    for (uint32_t k = slice.begin; k < slice.begin + slice.length; ++k) {
      const uint32_t row = rows_[k];
      if (scratch->counts[row] == 0) scratch->touched.push_back(row);
      // Saturate rather than wrap: a pair sharing 65535 grams is a
      // candidate under any threshold.
      if (scratch->counts[row] != UINT16_MAX) ++scratch->counts[row];
    }
  };

  if (options_.jaccard_tau > 0.0) {
    // Adaptive per-column threshold (BlockOptions::jaccard_tau): each
    // column is probed and resolved on its own, so the counts array can
    // be reused across columns. A row may qualify through several
    // columns; the final sort + unique dedups.
    const double base = options_.jaccard_tau / (1.0 + options_.jaccard_tau);
    for (size_t col = 0; col < probe.size(); ++col) {
      const std::vector<uint32_t>& set = *probe[col];
      if (set.empty()) continue;
      size_t stops = 0;
      scratch->touched.clear();
      for (uint32_t gram : set) {
        const uint64_t key = Key(col, gram);
        if (stop_keys_.count(key) > 0) {
          ++stops;
          continue;
        }
        probe_key(key);
      }
      const std::vector<uint32_t>& indexed_counts = col_row_grams_[col];
      for (uint32_t row : scratch->touched) {
        // ceil with an epsilon guard: rounding down only loosens the
        // threshold, which keeps the recall guarantee; rounding a exact
        // integer up would break it.
        const double total = static_cast<double>(set.size()) +
                             static_cast<double>(indexed_counts[row]);
        const size_t needed_full =
            static_cast<size_t>(std::ceil(base * total - 1e-9));
        const size_t needed =
            needed_full > stops ? std::max<size_t>(1, needed_full - stops)
                                : 1;
        if (scratch->counts[row] >= needed) out->push_back(row);
        scratch->counts[row] = 0;
      }
    }
    std::sort(out->begin(), out->end());
    out->erase(std::unique(out->begin(), out->end()), out->end());
    return;
  }

  if (options_.prefix_jaccard > 0.0) {
    // Prefix tier: per column, probe only the (g - ceil(tau*g) + 1)
    // globally-rarest grams. Rarity order minimizes postings scanned; the
    // recall guarantee holds for any size-p subset (qgram_index.h).
    for (size_t col = 0; col < probe.size(); ++col) {
      const std::vector<uint32_t>& set = *probe[col];
      if (set.empty()) continue;
      const size_t g = set.size();
      const size_t keep = g + 1 -
          std::min(g, static_cast<size_t>(std::ceil(
                          options_.prefix_jaccard * static_cast<double>(g))));
      scratch->ranked.clear();
      for (uint32_t gram : set) {
        const uint64_t key = Key(col, gram);
        auto it = buckets_.find(key);
        // Absent keys (unindexed or stop grams) rank as df 0: probing them
        // is free, and spending prefix slots on them never hurts the
        // guarantee (it only depends on how many probe grams are skipped).
        const uint64_t df = it == buckets_.end() ? 0 : it->second.length;
        scratch->ranked.emplace_back(df, key);
      }
      std::sort(scratch->ranked.begin(), scratch->ranked.end());
      for (size_t i = 0; i < keep && i < scratch->ranked.size(); ++i) {
        probe_key(scratch->ranked[i].second);
      }
    }
  } else {
    for (size_t col = 0; col < probe.size(); ++col) {
      for (uint32_t gram : *probe[col]) probe_key(Key(col, gram));
    }
  }

  for (uint32_t row : scratch->touched) {
    if (scratch->counts[row] >= min_shared) out->push_back(row);
    scratch->counts[row] = 0;
  }
  std::sort(out->begin(), out->end());
}

}  // namespace serd::block
