#include "block/candidates.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "common/rng.h"
#include "runtime/parallel_for.h"

namespace serd::block {

std::pair<size_t, size_t> CandidateSet::PairAt(size_t pos) const {
  SERD_CHECK(pos < cols.size());
  // First row whose slice ends past pos.
  auto it = std::upper_bound(offsets.begin(), offsets.end(), pos);
  const size_t i = static_cast<size_t>(it - offsets.begin()) - 1;
  return {i, cols[pos]};
}

bool CandidateSet::Contains(size_t i, uint32_t j) const {
  if (i + 1 >= offsets.size()) return false;
  auto begin = cols.begin() + static_cast<ptrdiff_t>(offsets[i]);
  auto end = cols.begin() + static_cast<ptrdiff_t>(offsets[i + 1]);
  return std::binary_search(begin, end, j);
}

CandidateSet GenerateCandidates(const QgramIndex& index,
                                size_t num_probe_rows,
                                const QgramIndex::GramAccessor& probe_grams,
                                runtime::ThreadPool* pool) {
  const size_t num_cols = index.stats().indexed_columns;
  std::vector<std::vector<uint32_t>> per_row(num_probe_rows);
  runtime::ParallelFor(
      pool, 0, num_probe_rows, 16, [&](size_t lo, size_t hi) {
        QgramIndex::Scratch scratch;
        std::vector<const std::vector<uint32_t>*> probe(num_cols);
        for (size_t row = lo; row < hi; ++row) {
          for (size_t col = 0; col < num_cols; ++col) {
            probe[col] = &probe_grams(row, col);
          }
          index.Candidates(probe, &scratch, &per_row[row]);
        }
      });

  CandidateSet out;
  out.offsets.resize(num_probe_rows + 1);
  size_t total = 0;
  for (size_t row = 0; row < num_probe_rows; ++row) {
    out.offsets[row] = total;
    total += per_row[row].size();
  }
  out.offsets[num_probe_rows] = total;
  out.cols.reserve(total);
  for (const auto& rows : per_row) {
    out.cols.insert(out.cols.end(), rows.begin(), rows.end());
  }
  return out;
}

std::vector<size_t> SampleDistinctSorted(size_t n, size_t k, uint64_t seed) {
  SERD_CHECK(k <= n);
  if (k == n) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  Rng rng(seed);
  std::unordered_set<size_t> chosen;
  chosen.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t pick = rng.UniformInt(j + 1);
    if (!chosen.insert(pick).second) chosen.insert(j);
  }
  std::vector<size_t> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace serd::block
