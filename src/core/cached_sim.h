#ifndef SERD_CORE_CACHED_SIM_H_
#define SERD_CORE_CACHED_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/similarity.h"
#include "data/table.h"

namespace serd {

/// Similarity computation with per-entity caches. Computing a similarity
/// vector from scratch rebuilds q-gram sets and re-parses numerics for
/// both entities; the S3 labeling pass and the rejection test evaluate one
/// entity against many partners, so caching the per-entity column
/// representations turns O(pairs * strlen) gram builds into O(entities).
class CachedSimilarity {
 public:
  explicit CachedSimilarity(const SimilaritySpec& spec);

  /// Pre-digested representation of one entity.
  struct Digest {
    /// Sorted hashed 3-gram profiles (HashedQgramSet) for text/categorical
    /// columns (empty otherwise). 32-bit FNV-1a hashes replace the string
    /// sets: comparisons are linear merges over uint32_t with no per-gram
    /// allocation, and agree with the string sets absent hash collisions
    /// (see DESIGN.md for the collision bound).
    std::vector<std::vector<uint32_t>> grams;
    /// Parsed value and validity flag for numeric/date columns.
    std::vector<double> numeric;
    std::vector<bool> numeric_ok;
    std::vector<bool> empty;
  };

  Digest MakeDigest(const Entity& entity) const;

  /// Similarity vector between two digests (same semantics as
  /// SimilaritySpec::SimilarityVector).
  Vec SimilarityVector(const Digest& a, const Digest& b) const;

  /// Same, writing into `out` (resized to the column count). The S3
  /// labeling loop scores millions of pairs; reusing one output vector per
  /// worker removes an allocation from every score.
  void SimilarityVectorInto(const Digest& a, const Digest& b, Vec* out) const;

  /// Schema columns carrying q-gram profiles in the digests (text and
  /// categorical) — the columns the blocking layer indexes.
  std::vector<size_t> GramColumns() const;

  const SimilaritySpec& spec() const { return *spec_; }

 private:
  const SimilaritySpec* spec_;
};

}  // namespace serd

#endif  // SERD_CORE_CACHED_SIM_H_
