#include "core/cached_sim.h"

#include <cmath>

#include "text/qgram.h"

namespace serd {

CachedSimilarity::CachedSimilarity(const SimilaritySpec& spec)
    : spec_(&spec) {}

CachedSimilarity::Digest CachedSimilarity::MakeDigest(
    const Entity& entity) const {
  const size_t l = spec_->schema().num_columns();
  SERD_CHECK_EQ(entity.values.size(), l);
  Digest d;
  d.grams.resize(l);
  d.numeric.assign(l, 0.0);
  d.numeric_ok.assign(l, false);
  d.empty.assign(l, false);
  for (size_t c = 0; c < l; ++c) {
    const std::string& v = entity.values[c];
    d.empty[c] = v.empty();
    switch (spec_->schema().column(c).type) {
      case ColumnType::kText:
      case ColumnType::kCategorical:
        d.grams[c] = HashedQgramSet(v, 3);
        break;
      case ColumnType::kNumeric:
      case ColumnType::kDate: {
        double parsed;
        if (spec_->ParseValue(c, v, &parsed)) {
          d.numeric[c] = parsed;
          d.numeric_ok[c] = true;
        }
        break;
      }
    }
  }
  return d;
}

Vec CachedSimilarity::SimilarityVector(const Digest& a,
                                       const Digest& b) const {
  Vec x;
  SimilarityVectorInto(a, b, &x);
  return x;
}

std::vector<size_t> CachedSimilarity::GramColumns() const {
  std::vector<size_t> cols;
  for (size_t c = 0; c < spec_->schema().num_columns(); ++c) {
    const ColumnType type = spec_->schema().column(c).type;
    if (type == ColumnType::kText || type == ColumnType::kCategorical) {
      cols.push_back(c);
    }
  }
  return cols;
}

void CachedSimilarity::SimilarityVectorInto(const Digest& a, const Digest& b,
                                            Vec* out) const {
  const size_t l = spec_->schema().num_columns();
  Vec& x = *out;
  x.resize(l);
  for (size_t c = 0; c < l; ++c) {
    if (a.empty[c] && b.empty[c]) {
      x[c] = 1.0;
      continue;
    }
    if (a.empty[c] || b.empty[c]) {
      x[c] = 0.0;
      continue;
    }
    switch (spec_->schema().column(c).type) {
      case ColumnType::kText:
      case ColumnType::kCategorical:
        x[c] = JaccardOfHashedSets(a.grams[c], b.grams[c]);
        break;
      case ColumnType::kNumeric:
      case ColumnType::kDate: {
        if (!a.numeric_ok[c] || !b.numeric_ok[c]) {
          x[c] = 0.0;
          break;
        }
        double range = spec_->Range(c);
        if (range <= 0.0) {
          x[c] = a.numeric[c] == b.numeric[c] ? 1.0 : 0.0;
          break;
        }
        double s = 1.0 - std::fabs(a.numeric[c] - b.numeric[c]) / range;
        x[c] = std::max(0.0, std::min(1.0, s));
        break;
      }
    }
  }
}

}  // namespace serd
