// SaveModels/LoadModels: the SerdSynthesizer face of the artifact store
// (DESIGN.md Section 5g). Kept out of serd.cc so the synthesis pipeline
// and the serialization concerns stay separately readable.

#include <filesystem>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "artifact/artifact_file.h"
#include "artifact/model_codec.h"
#include "common/timer.h"
#include "core/serd.h"

namespace serd {

/// Buckets a load failure for the artifact.load_fail_<cause> counters and
/// the CLI exit-code mapping, so a manifest shows *why* warm starts are
/// missing (stale format version vs. bit rot vs. a schema change) without
/// log archaeology.
const char* ArtifactLoadFailureCause(const Status& s) {
  switch (s.code()) {
    case StatusCode::kIOError:
      return "io";  // missing/unreadable file
    case StatusCode::kFailedPrecondition:
      return "version";  // format version from a different build lineage
    case StatusCode::kNotFound:
      return "missing_section";
    default:
      break;
  }
  const std::string& m = s.message();
  if (m.find("CRC") != std::string::npos) return "crc";
  if (m.find("schema") != std::string::npos) return "schema";
  if (m.find("magic") != std::string::npos ||
      m.find("truncated") != std::string::npos ||
      m.find("section table") != std::string::npos) {
    return "format";
  }
  return "decode";  // structurally valid bytes, semantically rejected
}

int ArtifactLoadExitCode(const Status& status) {
  if (status.ok()) return 0;
  const std::string cause = ArtifactLoadFailureCause(status);
  if (cause == "io") return 3;
  if (cause == "crc" || cause == "format" || cause == "missing_section") {
    return 4;
  }
  if (cause == "schema") return 5;
  if (cause == "version") return 6;
  return 7;  // "decode"
}

namespace {

/// Consumes the remainder check of a section reader: every section must be
/// read exactly to its end (trailing bytes mean writer/reader disagree).
Status FinishSection(const artifact::ByteReader& r, const char* section) {
  Status s = r.Finish();
  if (s.ok()) return s;
  return Status(s.code(),
                s.message() + " (in section '" + std::string(section) + "')");
}

}  // namespace

Status SerdSynthesizer::SaveModels(const std::string& dir) const {
  if (!fitted_) {
    return Status::FailedPrecondition(
        "SaveModels() requires a successful Fit()");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create model directory '" + dir +
                           "': " + ec.message());
  }

  const Schema& schema = spec_.schema();
  artifact::ArtifactWriter writer;

  // meta: schema fingerprint (the load-time compatibility gate) plus the
  // provenance of the training run — notably the DP epsilon already spent,
  // which a warm start inherits instead of re-spending.
  artifact::ByteWriter* meta = writer.AddSection("meta");
  meta->U32(static_cast<uint32_t>(schema.num_columns()));
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    meta->Str(schema.column(c).name);
    meta->U8(static_cast<uint8_t>(schema.column(c).type));
  }
  meta->F64(report_.mean_bank_epsilon);
  meta->I32(report_.m_components);
  meta->I32(report_.n_components);
  meta->U64(options_.seed);
  meta->F64(source_offline_seconds_);

  artifact::EncodeODistribution(o_real_, writer.AddSection("o_real"));

  artifact::ByteWriter* banks = writer.AddSection("banks");
  banks->U32(static_cast<uint32_t>(banks_.size()));
  for (const auto& bank : banks_) {
    banks->Bool(bank != nullptr);
    if (bank != nullptr) artifact::EncodeStringBank(*bank, banks);
  }

  artifact::EncodeEntityGan(*gan_, writer.AddSection("gan"));

  artifact::ByteWriter* pools = writer.AddSection("pools");
  pools->U32(static_cast<uint32_t>(decode_pools_.size()));
  for (const auto& pool : decode_pools_) pools->StrVec(pool);

  // quant: the reduced-precision decode weights each bank's models carry
  // right now (empty has-flags when running fp32). Always written — the
  // section's presence marks the format generation, and readers that
  // predate it skip unknown sections — so serving at --decode-precision
  // int8/bf16 from an artifact saved at that precision pays no
  // quantize-on-load. DESIGN.md §5m.
  artifact::ByteWriter* quant = writer.AddSection("quant");
  quant->U32(static_cast<uint32_t>(banks_.size()));
  for (const auto& bank : banks_) {
    quant->Bool(bank != nullptr);
    if (bank == nullptr) continue;
    quant->U32(static_cast<uint32_t>(bank->models().size()));
    for (const auto& model : bank->models()) {
      const QuantizedDecodeWeights* qw =
          model != nullptr ? model->quantized_weights() : nullptr;
      quant->Bool(qw != nullptr);
      if (qw != nullptr) artifact::EncodeQuantizedWeights(*qw, quant);
    }
  }

  const std::string path = dir + "/" + kModelFileName;
  Status written = writer.WriteFile(path);
  if (!written.ok()) {
    obs::Inc(obs::GetCounter(metrics_.get(), "artifact.save_fail"));
    return written;
  }
  obs::Inc(obs::GetCounter(metrics_.get(), "artifact.save_ok"));
  if (metrics_ != nullptr) {
    std::error_code size_ec;
    auto bytes = std::filesystem::file_size(path, size_ec);
    if (!size_ec) {
      metrics_->gauge("artifact.file_bytes")
          ->Set(static_cast<double>(bytes));
    }
  }
  return Status::OK();
}

Status SerdSynthesizer::LoadModels(const std::string& dir) {
  WallTimer timer;
  auto fail = [this](Status st) {
    obs::Inc(obs::GetCounter(metrics_.get(), "artifact.load_fail"));
    obs::Inc(obs::GetCounter(
        metrics_.get(),
        std::string("artifact.load_fail_") + ArtifactLoadFailureCause(st)));
    return st;
  };

  auto reader_or = artifact::ArtifactReader::Open(dir + "/" + kModelFileName);
  if (!reader_or.ok()) return fail(reader_or.status());
  const artifact::ArtifactReader& reader = reader_or.value();
  const Schema& schema = spec_.schema();

  // --- meta: the schema fingerprint gates everything else. ---
  auto meta_or = reader.Section("meta");
  if (!meta_or.ok()) return fail(meta_or.status());
  artifact::ByteReader meta = std::move(meta_or).value();
  uint32_t ncols = meta.U32();
  if (meta.ok() && ncols != schema.num_columns()) {
    return fail(Status::InvalidArgument(
        "artifact schema mismatch: " + std::to_string(ncols) +
        " columns in artifact, " + std::to_string(schema.num_columns()) +
        " in dataset"));
  }
  for (size_t c = 0; meta.ok() && c < schema.num_columns(); ++c) {
    std::string name = meta.Str();
    uint8_t type = meta.U8();
    if (!meta.ok()) break;
    if (name != schema.column(c).name ||
        type != static_cast<uint8_t>(schema.column(c).type)) {
      return fail(Status::InvalidArgument(
          "artifact schema mismatch at column " + std::to_string(c) +
          ": artifact has '" + name + "' (type " + std::to_string(type) +
          "), dataset has '" + schema.column(c).name + "' (" +
          ColumnTypeName(schema.column(c).type) + ")"));
    }
  }
  double src_epsilon = meta.F64();
  int m_components = meta.I32();
  int n_components = meta.I32();
  uint64_t src_seed = meta.U64();
  double src_offline_seconds = meta.F64();
  if (!meta.ok()) return fail(meta.status());
  if (Status s = FinishSection(meta, "meta"); !s.ok()) return fail(s);
  if (m_components < 0 || m_components > 256 || n_components < 0 ||
      n_components > 256) {
    return fail(Status::InvalidArgument(
        "artifact meta has implausible component counts " +
        std::to_string(m_components) + "/" + std::to_string(n_components)));
  }

  // Everything below decodes into locals; members are only assigned after
  // the whole artifact validated, so a failure leaves this synthesizer
  // exactly as it was (fitted or not).

  // --- o_real ---
  auto oreal_or = reader.Section("o_real");
  if (!oreal_or.ok()) return fail(oreal_or.status());
  artifact::ByteReader oreal_reader = std::move(oreal_or).value();
  auto o_real = artifact::DecodeODistribution(&oreal_reader);
  if (!o_real.ok()) return fail(o_real.status());
  if (Status s = FinishSection(oreal_reader, "o_real"); !s.ok()) {
    return fail(s);
  }
  if (o_real.value().dimension() != schema.num_columns()) {
    return fail(Status::InvalidArgument(
        "artifact schema mismatch: o-distribution dimension " +
        std::to_string(o_real.value().dimension()) + " != column count " +
        std::to_string(schema.num_columns())));
  }

  // --- string banks (one per text column, same layout Fit() builds) ---
  auto banks_or = reader.Section("banks");
  if (!banks_or.ok()) return fail(banks_or.status());
  artifact::ByteReader banks_reader = std::move(banks_or).value();
  uint32_t bank_cols = banks_reader.U32();
  if (banks_reader.ok() && bank_cols != schema.num_columns()) {
    return fail(Status::InvalidArgument(
        "artifact schema mismatch: banks section covers " +
        std::to_string(bank_cols) + " columns, dataset has " +
        std::to_string(schema.num_columns())));
  }
  std::vector<std::unique_ptr<StringSynthesisBank>> banks(
      schema.num_columns());
  // When the caller wants a reduced decode precision and the artifact
  // carries a quant section, decode the banks at fp32 first so
  // RestoreTrained skips quantize-on-load; the saved weights are attached
  // below instead (with quantize-on-load kept as the fallback for payload
  // gaps or a precision mismatch).
  const nn::DecodePrecision want_precision =
      options_.string_bank.decode_precision;
  const bool attach_quant = want_precision != nn::DecodePrecision::kFp32 &&
                            reader.Has("quant");
  for (size_t c = 0; banks_reader.ok() && c < schema.num_columns(); ++c) {
    bool present = banks_reader.Bool();
    if (!banks_reader.ok()) break;
    const bool is_text = schema.column(c).type == ColumnType::kText;
    if (present != is_text) {
      return fail(Status::InvalidArgument(
          "artifact schema mismatch: column " + std::to_string(c) + " ('" +
          schema.column(c).name + "') " +
          (present ? "has a string bank but is not a text column"
                   : "is a text column but has no string bank")));
    }
    if (!present) continue;
    // Mirror Fit(): same per-column training seed and shared pool/metrics,
    // so a saved-then-loaded bank is indistinguishable from a trained one.
    StringBankOptions bank_opts = options_.string_bank;
    bank_opts.train.seed = options_.seed + 7919ULL * (c + 1);
    bank_opts.train.pool = pool_.get();
    if (attach_quant) {
      bank_opts.decode_precision = nn::DecodePrecision::kFp32;
    }
    auto sim = [this, c](const std::string& a, const std::string& b) {
      return spec_.ColumnSimilarity(c, a, b);
    };
    auto bank =
        artifact::DecodeStringBank(&banks_reader, bank_opts, std::move(sim));
    if (!bank.ok()) return fail(bank.status());
    banks[c] = std::move(bank).value();
  }
  if (!banks_reader.ok()) return fail(banks_reader.status());
  if (Status s = FinishSection(banks_reader, "banks"); !s.ok()) {
    return fail(s);
  }

  // --- GAN + encoder (encoder is stateless: rebuilt from the spec) ---
  auto gan_or = reader.Section("gan");
  if (!gan_or.ok()) return fail(gan_or.status());
  artifact::ByteReader gan_reader = std::move(gan_or).value();
  auto gan = artifact::DecodeEntityGan(&gan_reader);
  if (!gan.ok()) return fail(gan.status());
  if (Status s = FinishSection(gan_reader, "gan"); !s.ok()) return fail(s);
  auto encoder = std::make_unique<EntityEncoder>(spec_, options_.encoder);
  if (gan.value()->feature_dim() != encoder->feature_dim()) {
    return fail(Status::InvalidArgument(
        "artifact schema mismatch: GAN feature_dim " +
        std::to_string(gan.value()->feature_dim()) +
        " but this dataset/encoder configuration produces " +
        std::to_string(encoder->feature_dim())));
  }

  // --- cold-start decode pools ---
  auto pools_or = reader.Section("pools");
  if (!pools_or.ok()) return fail(pools_or.status());
  artifact::ByteReader pools_reader = std::move(pools_or).value();
  uint32_t pool_cols = pools_reader.U32();
  if (pools_reader.ok() && pool_cols != schema.num_columns()) {
    return fail(Status::InvalidArgument(
        "artifact schema mismatch: pools section covers " +
        std::to_string(pool_cols) + " columns, dataset has " +
        std::to_string(schema.num_columns())));
  }
  std::vector<std::vector<std::string>> pools(schema.num_columns());
  for (size_t c = 0; pools_reader.ok() && c < schema.num_columns(); ++c) {
    pools[c] = pools_reader.StrVec();
  }
  if (!pools_reader.ok()) return fail(pools_reader.status());
  if (Status s = FinishSection(pools_reader, "pools"); !s.ok()) {
    return fail(s);
  }
  for (size_t c = 0; c < pools.size(); ++c) {
    if (pools[c].empty()) {
      return fail(Status::InvalidArgument(
          "artifact decode pool for column " + std::to_string(c) +
          " is empty (Fit() never saves an empty pool)"));
    }
  }

  // --- quantized decode weights (optional section: absent from older
  // artifacts, skipped by older readers, and never opened — so never CRC
  // checked — when this load runs fp32). Attach each saved weight set to
  // its model when the precision matches the request; everything else
  // falls back to quantize-on-load via set_decode_precision below. ---
  if (attach_quant) {
    auto quant_or = reader.Section("quant");
    if (!quant_or.ok()) return fail(quant_or.status());
    artifact::ByteReader quant_reader = std::move(quant_or).value();
    uint32_t quant_cols = quant_reader.U32();
    if (quant_reader.ok() && quant_cols != schema.num_columns()) {
      return fail(Status::InvalidArgument(
          "artifact schema mismatch: quant section covers " +
          std::to_string(quant_cols) + " columns, dataset has " +
          std::to_string(schema.num_columns())));
    }
    for (size_t c = 0; quant_reader.ok() && c < schema.num_columns(); ++c) {
      bool present = quant_reader.Bool();
      if (!quant_reader.ok()) break;
      if (present != (banks[c] != nullptr)) {
        return fail(Status::InvalidArgument(
            "artifact quant section disagrees with the banks section at "
            "column " +
            std::to_string(c)));
      }
      if (!present) continue;
      uint32_t num_models = quant_reader.U32();
      if (quant_reader.ok() && num_models != banks[c]->models().size()) {
        return fail(Status::InvalidArgument(
            "artifact quant section has " + std::to_string(num_models) +
            " buckets for column " + std::to_string(c) + ", bank has " +
            std::to_string(banks[c]->models().size())));
      }
      for (uint32_t b = 0; quant_reader.ok() && b < num_models; ++b) {
        bool has = quant_reader.Bool();
        if (!quant_reader.ok()) break;
        TransformerSeq2Seq* model = banks[c]->mutable_model(b);
        if (has && model == nullptr) {
          return fail(Status::InvalidArgument(
              "artifact quant section carries weights for untrained "
              "bucket " +
              std::to_string(b) + " of column " + std::to_string(c)));
        }
        if (!has) continue;
        auto qw =
            artifact::DecodeQuantizedWeights(&quant_reader, model->config());
        if (!qw.ok()) return fail(qw.status());
        if (qw.value()->precision == want_precision) {
          model->SetQuantizedWeights(std::move(qw).value());
        }
      }
    }
    if (!quant_reader.ok()) return fail(quant_reader.status());
    if (Status s = FinishSection(quant_reader, "quant"); !s.ok()) {
      return fail(s);
    }
    // Models attached above no-op here (precision already matches); any
    // others — missing payload, or the artifact was saved at a different
    // precision — quantize from their restored fp32 weights now.
    for (auto& bank : banks) {
      if (bank != nullptr) bank->set_decode_precision(want_precision);
    }
  }

  // --- commit: from here on the warm start is indistinguishable from a
  // freshly trained Fit() with the same options and seed. The lock makes
  // the commit atomic against concurrent RunManifestJson() snapshots
  // (everything above worked on locals, so a failed load never holds the
  // lock or touches members). ---
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    o_real_ = std::move(o_real).value();
    banks_ = std::move(banks);
    encoder_ = std::move(encoder);
    gan_ = std::move(gan).value();
    decode_pools_ = std::move(pools);
    report_.m_components = m_components;
    report_.n_components = n_components;
    report_.mean_bank_epsilon = src_epsilon;  // budget spent at training time
    report_.warm_started = true;
    report_.offline_seconds = timer.Seconds();  // load, not training cost
    source_offline_seconds_ = src_offline_seconds;
    fitted_ = true;
  }

  obs::Inc(obs::GetCounter(metrics_.get(), "artifact.load_ok"));
  if (metrics_ != nullptr) {
    metrics_->gauge("artifact.source_seed")
        ->Set(static_cast<double>(src_seed));
    metrics_->gauge("artifact.source_offline_seconds")
        ->Set(src_offline_seconds);
    metrics_->gauge("artifact.load_seconds")->Set(report_.offline_seconds);
  }
  return Status::OK();
}

}  // namespace serd
