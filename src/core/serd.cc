#include "core/serd.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"
#include "common/timer.h"
#include "obs/manifest.h"
#include "obs/trace.h"
#include "runtime/parallel_for.h"

namespace serd {

const char* BlockingModeName(SerdOptions::BlockingMode mode) {
  switch (mode) {
    case SerdOptions::BlockingMode::kOff:
      return "off";
    case SerdOptions::BlockingMode::kQgram:
      return "qgram";
    case SerdOptions::BlockingMode::kAuto:
      return "auto";
  }
  return "off";
}

bool ParseBlockingMode(const std::string& name,
                       SerdOptions::BlockingMode* mode) {
  if (name == "off") {
    *mode = SerdOptions::BlockingMode::kOff;
  } else if (name == "qgram") {
    *mode = SerdOptions::BlockingMode::kQgram;
  } else if (name == "auto") {
    *mode = SerdOptions::BlockingMode::kAuto;
  } else {
    return false;
  }
  return true;
}

const char* DecodePrecisionName(nn::DecodePrecision precision) {
  switch (precision) {
    case nn::DecodePrecision::kFp32:
      return "fp32";
    case nn::DecodePrecision::kBf16:
      return "bf16";
    case nn::DecodePrecision::kInt8:
      return "int8";
  }
  return "fp32";
}

bool ParseDecodePrecision(const std::string& name,
                          nn::DecodePrecision* precision) {
  if (name == "fp32") {
    *precision = nn::DecodePrecision::kFp32;
  } else if (name == "bf16") {
    *precision = nn::DecodePrecision::kBf16;
  } else if (name == "int8") {
    *precision = nn::DecodePrecision::kInt8;
  } else {
    return false;
  }
  return true;
}

SerdSynthesizer::SerdSynthesizer(const ERDataset& real, SerdOptions options)
    : real_(&real), options_(std::move(options)) {
  spec_ = SimilaritySpec::FromTables(real.schema(), {&real.a, &real.b});
  cached_sim_ = std::make_unique<CachedSimilarity>(spec_);
  resolved_threads_ = runtime::ResolveThreads(options_.threads);
  if (resolved_threads_ > 1) {
    // Workers = threads - 1: the calling thread drains chunks too, so the
    // total executor count matches the requested thread count.
    pool_ = std::make_unique<runtime::ThreadPool>(
        static_cast<int>(resolved_threads_ - 1));
  }
  options_.gmm.pool = pool_.get();
  if (options_.observability) {
    metrics_ = std::make_unique<obs::MetricsRegistry>();
  }
  // Thread the shared registry (or null) into every stage's options.
  options_.gmm.metrics = metrics_.get();
  options_.string_bank.metrics = metrics_.get();
  options_.string_bank.train.metrics = metrics_.get();
  options_.gan.metrics = metrics_.get();

  // Precompute the categorical similarity tables (CatSimTable). Domains
  // are small (distinct values of one column), so the O(|domain|^2) build
  // is paid once here instead of two O(|domain|) q-gram scans per
  // synthesized categorical cell.
  const Schema& schema = spec_.schema();
  cat_sim_.resize(schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (schema.column(c).type != ColumnType::kCategorical) continue;
    const auto& domain = spec_.stats()[c].domain;
    CatSimTable& table = cat_sim_[c];
    table.rows.resize(domain.size());
    for (size_t i = 0; i < domain.size(); ++i) {
      table.index.emplace(domain[i], i);
      table.rows[i].resize(domain.size());
      for (size_t j = 0; j < domain.size(); ++j) {
        table.rows[i][j] = spec_.ColumnSimilarity(c, domain[i], domain[j]);
      }
    }
  }
}

Status SerdSynthesizer::Fit(
    const std::vector<std::vector<std::string>>& background_text_corpora,
    const Table& background_entities) {
  WallTimer timer;

  // Warm start: a validated artifact replaces the entire offline phase —
  // S1 GMM fitting, DP transformer training, GAN training. kAuto degrades
  // to cold training when no usable artifact exists; kLoad treats that as
  // fatal (callers relying on "no further DP budget is spent").
  if (!options_.model_dir.empty() &&
      options_.artifact_mode != SerdOptions::ArtifactMode::kSave) {
    Status loaded = LoadModels(options_.model_dir);
    if (loaded.ok()) return Status::OK();
    if (options_.artifact_mode == SerdOptions::ArtifactMode::kLoad) {
      return loaded;
    }
    SERD_LOG(kWarning) << "model artifact unavailable ("
                       << loaded.ToString() << "); training from scratch";
  }

  Rng rng(options_.seed);

  // ----- S1: learn the M- and N-distributions from E_real. -----
  obs::TraceSpan s1_span(metrics_.get(), "s1.distributions");
  LabeledPairSet pairs =
      BuildLabeledPairs(*real_, options_.neg_pairs_per_match, &rng,
                        pool_.get());
  std::vector<Vec> x_pos, x_neg;
  ComputeSimilarityVectors(*real_, spec_, pairs, &x_pos, &x_neg, pool_.get());
  if (x_pos.empty() || x_neg.empty()) {
    return Status::FailedPrecondition(
        "real dataset must contain both matching and non-matching pairs");
  }
  auto m_fit = Gmm::FitWithAic(x_pos, options_.gmm);
  SERD_RETURN_IF_ERROR(m_fit.status());
  auto n_fit = Gmm::FitWithAic(x_neg, options_.gmm);
  SERD_RETURN_IF_ERROR(n_fit.status());
  double pi = static_cast<double>(x_pos.size()) /
              static_cast<double>(x_pos.size() + x_neg.size());
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    o_real_ = ODistribution(pi, m_fit.value(), n_fit.value());
    report_.m_components = static_cast<int>(m_fit->num_components());
    report_.n_components = static_cast<int>(n_fit->num_components());
  }
  s1_span.Stop();
  if (metrics_ != nullptr) {
    metrics_->gauge("s1.m_components")->Set(report_.m_components);
    metrics_->gauge("s1.n_components")->Set(report_.n_components);
    metrics_->gauge("s1.pi")->Set(pi);
  }

  // ----- Offline: one transformer bank per text column. -----
  const Schema& schema = spec_.schema();
  size_t text_columns = 0;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (schema.column(c).type == ColumnType::kText) ++text_columns;
  }
  if (background_text_corpora.size() != text_columns) {
    return Status::InvalidArgument(
        "need one background corpus per text column");
  }

  obs::TraceSpan banks_span(metrics_.get(), "offline.string_banks");
  banks_.clear();
  banks_.resize(schema.num_columns());
  size_t corpus_idx = 0;
  double total_eps = 0.0;
  int eps_count = 0;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (schema.column(c).type != ColumnType::kText) continue;
    StringBankOptions bank_opts = options_.string_bank;
    bank_opts.train.seed = options_.seed + 7919ULL * (c + 1);
    bank_opts.train.pool = pool_.get();
    auto sim = [this, c](const std::string& a, const std::string& b) {
      return spec_.ColumnSimilarity(c, a, b);
    };
    auto bank = std::make_unique<StringSynthesisBank>(bank_opts, sim);
    Rng bank_rng(options_.seed + 104729ULL * (c + 1));
    SERD_RETURN_IF_ERROR(
        bank->Train(background_text_corpora[corpus_idx], &bank_rng));
    if (bank->stats().mean_epsilon > 0.0) {
      total_eps += bank->stats().mean_epsilon;
      ++eps_count;
    }
    banks_[c] = std::move(bank);
    ++corpus_idx;
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    report_.mean_bank_epsilon = eps_count > 0 ? total_eps / eps_count : 0.0;
  }
  banks_span.Stop();

  // ----- Offline: GAN over background entity encodings. -----
  if (!(background_entities.schema() == schema)) {
    return Status::InvalidArgument(
        "background entities must share the dataset schema");
  }
  if (background_entities.empty()) {
    return Status::InvalidArgument("background entities table is empty");
  }
  encoder_ = std::make_unique<EntityEncoder>(spec_, options_.encoder);
  std::vector<std::vector<float>> features;
  features.reserve(background_entities.size());
  for (const auto& row : background_entities.rows()) {
    features.push_back(encoder_->Encode(row));
  }
  gan_ = std::make_unique<EntityGan>(encoder_->feature_dim(), options_.gan);
  gan_->Train(features);

  decode_pools_.assign(schema.num_columns(), {});
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    decode_pools_[c] = background_entities.ColumnValues(c);
    if (decode_pools_[c].empty()) decode_pools_[c].push_back("");
  }

  {
    std::lock_guard<std::mutex> lock(state_mu_);
    report_.offline_seconds = timer.Seconds();
    source_offline_seconds_ = report_.offline_seconds;
    report_.warm_started = false;
    fitted_ = true;
  }

  if (!options_.model_dir.empty()) {
    SERD_RETURN_IF_ERROR(SaveModels(options_.model_dir));
  }
  return Status::OK();
}

Entity SerdSynthesizer::SynthesizeFrom(const Entity& e, const Vec& x,
                                       Rng* rng) const {
  const Schema& schema = spec_.schema();
  Entity out;
  out.values.resize(schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const double target = std::clamp(x[c], 0.0, 1.0);
    switch (schema.column(c).type) {
      case ColumnType::kNumeric:
      case ColumnType::kDate: {
        // Closed form (paper: e'[C] = e[C] +- (1 - x[C]) * range).
        double base;
        double lo = spec_.stats()[c].min_value;
        double hi = spec_.stats()[c].max_value;
        double range = spec_.Range(c);
        if (!spec_.ParseValue(c, e.values[c], &base)) {
          base = rng->Uniform(lo, hi);
        }
        double delta = (1.0 - target) * range;
        double candidate =
            rng->Bernoulli(0.5) ? base + delta : base - delta;
        if (candidate < lo || candidate > hi) {
          candidate = rng->Bernoulli(0.5) ? base + delta : base - delta;
          candidate = std::clamp(candidate, lo, hi);
        }
        out.values[c] = spec_.FormatValue(c, candidate);
        break;
      }
      case ColumnType::kCategorical: {
        // Closest existing value to the target similarity; ties within a
        // small margin are broken uniformly for variety. Similarities to
        // the domain come from the precomputed CatSimTable row of the
        // source value (same ColumnSimilarity semantics by construction).
        const auto& domain = spec_.stats()[c].domain;
        if (domain.empty()) {
          out.values[c] = e.values[c];
          break;
        }
        const CatSimTable& table = cat_sim_[c];
        const std::vector<double>* row;
        std::vector<double> fallback;
        auto it = table.index.find(e.values[c]);
        if (it != table.index.end()) {
          row = &table.rows[it->second];
        } else {
          // Source value outside the domain (cold-start decode from the
          // background pool): compute its row once.
          fallback.resize(domain.size());
          for (size_t i = 0; i < domain.size(); ++i) {
            fallback[i] = spec_.ColumnSimilarity(c, e.values[c], domain[i]);
          }
          row = &fallback;
        }
        double best_err = 2.0;
        for (size_t i = 0; i < domain.size(); ++i) {
          best_err = std::min(best_err, std::fabs((*row)[i] - target));
        }
        std::vector<const std::string*> near;
        for (size_t i = 0; i < domain.size(); ++i) {
          if (std::fabs((*row)[i] - target) <= best_err + 0.02) {
            near.push_back(&domain[i]);
          }
        }
        out.values[c] = *near[rng->UniformInt(near.size())];
        break;
      }
      case ColumnType::kText: {
        SERD_CHECK(banks_[c] != nullptr);
        out.values[c] = banks_[c]->Synthesize(e.values[c], target, rng);
        break;
      }
    }
  }
  return out;
}

Entity SerdSynthesizer::ColdStartEntity(Rng* rng) const {
  SERD_CHECK(gan_ != nullptr && encoder_ != nullptr);
  std::vector<float> features = gan_->GenerateFeatures(rng);
  Entity e = encoder_->Decode(features, decode_pools_);
  e.id = "seed";
  return e;
}

bool SerdSynthesizer::RejectedByDiscriminator(const Entity& e) const {
  if (gan_ == nullptr || !gan_->trained()) return false;
  double score = gan_->DiscriminatorScore(encoder_->Encode(e));
  return score < options_.beta;
}

Result<ERDataset> SerdSynthesizer::Synthesize(const CancelToken* cancel) {
  // The run accumulates into a local report and commits it under
  // state_mu_ at the end, so a concurrent RunManifestJson() snapshot sees
  // either the previous run's report or this one, never a half-updated
  // mix (class thread-safety contract). The same locals-then-commit shape
  // is what makes cancellation state-safe: every `return cancel_status()`
  // below drops the locals and leaves report_/models untouched, so a
  // re-run of the job is byte-identical to one that was never cancelled.
  SerdReport report;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (!fitted_) {
      return Status::FailedPrecondition(
          "Fit() must succeed before Synthesize()");
    }
    report = report_;
  }
  auto cancel_status = [cancel]() -> Status {
    Status cause = cancel->cause();
    return cause.ok() ? Status::Cancelled("synthesis cancelled") : cause;
  };
  // Fold the token into the string banks' decode early-stop callbacks for
  // the duration of the run (cleared on every exit path), so a trip also
  // interrupts a candidate decode already in flight, not just the next
  // loop iteration.
  struct BankCancelGuard {
    std::vector<std::unique_ptr<StringSynthesisBank>>* banks;
    ~BankCancelGuard() {
      for (auto& bank : *banks) {
        if (bank != nullptr) bank->set_cancel_token(nullptr);
      }
    }
  } bank_cancel_guard{&banks_};
  for (auto& bank : banks_) {
    if (bank != nullptr) bank->set_cancel_token(cancel);
  }
  WallTimer timer;
  if (pool_ != nullptr) pool_->ResetStats();
  report.threads_used = static_cast<int>(resolved_threads_);
  Rng rng(options_.seed ^ 0x51e2d5ULL);

  // Bank decode stats accumulate across runs; snapshot them so the report
  // carries this run's delta.
  struct BankDecodeTotals {
    long steps = 0, cached = 0, quantized = 0, hits = 0, misses = 0;
  };
  auto bank_decode_totals = [this] {
    BankDecodeTotals t;
    for (const auto& bank : banks_) {
      if (bank == nullptr) continue;
      const StringBankStats& s = bank->stats();
      t.steps += s.decode_steps;
      t.cached += s.decode_cached_steps;
      t.quantized += s.decode_quantized_steps;
      t.hits += s.encoder_cache_hits;
      t.misses += s.encoder_cache_misses;
    }
    return t;
  };
  const BankDecodeTotals decode_before = bank_decode_totals();

  // Metric handles resolved once, outside the loop (all null when
  // observability is off; recording through them is then one pointer test
  // per site).
  obs::Counter* c_accepted = obs::GetCounter(metrics_.get(), "s2.accepted");
  obs::Counter* c_rej_disc =
      obs::GetCounter(metrics_.get(), "s2.rejected_discriminator");
  obs::Counter* c_rej_dist =
      obs::GetCounter(metrics_.get(), "s2.rejected_distribution");
  obs::Counter* c_forced_disc =
      obs::GetCounter(metrics_.get(), "s2.forced_accepts_discriminator");
  obs::Counter* c_forced_dist =
      obs::GetCounter(metrics_.get(), "s2.forced_accepts_distribution");
  obs::Counter* c_tracked_pos =
      obs::GetCounter(metrics_.get(), "s2.tracked_pairs_pos");
  obs::Counter* c_tracked_neg =
      obs::GetCounter(metrics_.get(), "s2.tracked_pairs_neg");
  obs::Counter* c_jsd_evals =
      obs::GetCounter(metrics_.get(), "s2.jsd_evaluations");
  obs::Counter* c_guard =
      obs::GetCounter(metrics_.get(), "s2.guard_exhausted");
  obs::Histogram* h_attempts = obs::GetHistogram(
      metrics_.get(), "s2.attempts_per_entity", obs::LinearBounds(1.0, 8.0, 8));
  obs::Histogram* h_jsd_seconds =
      obs::GetTimer(metrics_.get(), "s2.jsd_seconds");

  const size_t na = options_.target_a > 0 ? options_.target_a : real_->a.size();
  const size_t nb = options_.target_b > 0 ? options_.target_b : real_->b.size();
  SERD_CHECK(na > 0 && nb > 0);

  ERDataset syn;
  syn.name = real_->name + "-SERD" +
             (options_.enable_rejection ? "" : "-");
  syn.a = Table(spec_.schema());
  syn.b = Table(spec_.schema());

  std::vector<CachedSimilarity::Digest> a_digests, b_digests;
  a_digests.reserve(na);
  b_digests.reserve(nb);

  auto append_entity = [&](bool to_a, Entity e) -> size_t {
    Table& t = to_a ? syn.a : syn.b;
    auto& digests = to_a ? a_digests : b_digests;
    e.id = (to_a ? "sa" : "sb") + std::to_string(t.size());
    digests.push_back(cached_sim_->MakeDigest(e));
    t.Append(std::move(e));
    return t.size() - 1;
  };

  // Bootstrap with one GAN-generated A-entity (paper step S2 start).
  append_entity(true, ColdStartEntity(&rng));
  ++report.accepted_entities;
  obs::Inc(c_accepted);
  obs::TraceSpan s2_span(metrics_.get(), "s2.loop");

  // O_syn tracking state (paper Section V, case 2).
  std::vector<Vec> warm_pos, warm_neg;
  std::unique_ptr<IncrementalGmm> m_syn, n_syn;
  size_t syn_pos_count = 0, syn_neg_count = 0;
  double current_jsd = 0.0;
  const uint64_t jsd_seed = options_.seed ^ 0x15d0ULL;
  // All JSD estimates during the run go through this wrapper so the
  // evaluation count and (when observability is on) the per-call wall time
  // are accounted in one place.
  auto estimate_jsd = [&](const ODistribution& o_syn) {
    ++report.jsd_evaluations;
    obs::Inc(c_jsd_evals);
    if (h_jsd_seconds == nullptr) {
      return EstimateJsd(o_syn, o_real_, options_.jsd_samples, jsd_seed,
                         pool_.get());
    }
    WallTimer jsd_timer;
    double v = EstimateJsd(o_syn, o_real_, options_.jsd_samples, jsd_seed,
                           pool_.get());
    h_jsd_seconds->Record(jsd_timer.Seconds());
    return v;
  };
  auto current_o_syn = [&]() {
    double pi_syn =
        static_cast<double>(syn_pos_count) /
        static_cast<double>(std::max<size_t>(1, syn_pos_count + syn_neg_count));
    pi_syn = std::clamp(pi_syn, 0.001, 0.999);
    return ODistribution(pi_syn, m_syn->model(), n_syn->model());
  };

  // Labels for sampled pairs (step S2-4).
  struct LinkedPair {
    size_t a_idx, b_idx;
    bool match;
  };
  std::vector<LinkedPair> linked;

  // Arm-sampling rate for S2-2 (see SerdOptions::match_link_rate).
  double link_rate = options_.match_link_rate;
  if (link_rate <= 0.0) {
    link_rate = static_cast<double>(real_->matches.size()) /
                static_cast<double>(na + nb);
    link_rate = std::clamp(link_rate, 0.02, 0.9);
  }
  auto sample_vector = [&](Rng* r) {
    ODistribution::SampleResult out;
    out.from_match = r->Bernoulli(link_rate);
    out.x = out.from_match ? o_real_.m_distribution().Sample(r)
                           : o_real_.n_distribution().Sample(r);
    for (double& v : out.x) v = std::clamp(v, 0.0, 1.0);
    return out;
  };

  size_t guard = 0;
  const size_t max_iterations = options_.max_loop_iterations > 0
                                    ? options_.max_loop_iterations
                                    : 60 * (na + nb) + 1000;
  while ((syn.a.size() < na || syn.b.size() < nb) &&
         guard++ < max_iterations) {
    // Deadline/cancellation poll: one relaxed atomic load per accepted
    // entity, so a tripped token stops the run within one loop iteration.
    if (cancel != nullptr && cancel->cancelled()) return cancel_status();
    // --- S2-1: choose the source entity e. ---
    bool a_full = syn.a.size() >= na;
    bool b_full = syn.b.size() >= nb;
    bool e_from_a;
    if (a_full) {
      e_from_a = true;  // e' must go to B
    } else if (b_full) {
      e_from_a = false;  // e' must go to A
    } else {
      size_t total = syn.a.size() + syn.b.size();
      e_from_a = rng.UniformInt(total) < syn.a.size();
    }
    const Table& source_table = e_from_a ? syn.a : syn.b;
    const auto& source_digests = e_from_a ? a_digests : b_digests;
    if (source_table.empty()) continue;
    size_t e_idx = rng.UniformInt(source_table.size());
    const Entity& e = source_table.row(e_idx);

    // --- S2-2 + S2-3 with rejection retries. ---
    // Every guard iteration accepts exactly one entity: the final
    // attempt's candidate is kept even when a rejection test fails (a
    // "forced accept", split by cause below). Crucially, forced accepts
    // run through the same delta-compute/commit path as normal accepts —
    // only the Eq. 10 rejection *decision* is skipped — so O_syn tracking
    // covers every pair the dataset actually contains. (The pre-fix code
    // synthesized a fresh entity on force and committed nothing, letting
    // O_syn drift whenever the discriminator was strict.)
    Entity e_new;
    bool is_match = false;
    std::vector<Vec> delta_pos, delta_neg;
    for (int attempt = 0; attempt <= options_.max_reject_retries;
         ++attempt) {
      // Per-attempt poll: rejection retries can dominate an iteration's
      // wall time (each one decodes candidates and estimates a JSD), so a
      // deadline that trips mid-iteration is honored between attempts too.
      if (cancel != nullptr && cancel->cancelled()) return cancel_status();
      const bool last_attempt = attempt == options_.max_reject_retries;
      auto sample = sample_vector(&rng);
      Entity candidate = SynthesizeFrom(e, sample.x, &rng);

      bool forced_disc = false;
      if (options_.enable_rejection && RejectedByDiscriminator(candidate)) {
        ++report.rejected_by_discriminator;
        obs::Inc(c_rej_disc);
        if (!last_attempt) continue;
        forced_disc = true;  // retries exhausted: keep it anyway
      }

      // Induced pairs between the candidate and (a sample of) T_e
      // (paper Remark (1): sample t partners).
      auto digest = cached_sim_->MakeDigest(candidate);
      delta_pos.clear();
      delta_neg.clear();
      size_t partners = source_table.size();
      size_t t_cap = static_cast<size_t>(
          std::max(1, options_.rejection_partner_sample));
      if (partners <= t_cap) {
        for (size_t s = 0; s < partners; ++s) {
          Vec v = cached_sim_->SimilarityVector(source_digests[s], digest);
          (o_real_.LabelAsMatch(v) ? delta_pos : delta_neg)
              .push_back(std::move(v));
        }
      } else {
        // Floyd's algorithm: t_cap *distinct* partner indices in t_cap
        // draws (one UniformInt per selection, like the old
        // with-replacement loop, which could feed duplicate pairs into
        // the Eq. 9 delta and double-count them).
        std::unordered_set<size_t> chosen;
        chosen.reserve(t_cap);
        for (size_t j = partners - t_cap; j < partners; ++j) {
          size_t pick = rng.UniformInt(j + 1);
          if (!chosen.insert(pick).second) {
            pick = j;
            chosen.insert(pick);
          }
          Vec v = cached_sim_->SimilarityVector(source_digests[pick], digest);
          (o_real_.LabelAsMatch(v) ? delta_pos : delta_neg)
              .push_back(std::move(v));
        }
      }

      bool forced_dist = false;
      if (options_.enable_rejection && m_syn != nullptr &&
          n_syn != nullptr) {
        // Preview the updated O_syn and apply the paper's Eq. 10 test.
        auto dp = m_syn->ComputeDelta(delta_pos);
        auto dn = n_syn->ComputeDelta(delta_neg);
        Gmm m_preview = m_syn->PreviewModel(dp);
        Gmm n_preview = n_syn->PreviewModel(dn);
        double pi_new =
            static_cast<double>(syn_pos_count + delta_pos.size()) /
            static_cast<double>(std::max<size_t>(
                1, syn_pos_count + syn_neg_count + delta_pos.size() +
                       delta_neg.size()));
        pi_new = std::clamp(pi_new, 0.001, 0.999);
        ODistribution o_syn_new(pi_new, m_preview, n_preview);
        double jsd_new = estimate_jsd(o_syn_new);
        if (jsd_new > options_.alpha * current_jsd && !forced_disc) {
          if (!last_attempt) {
            ++report.rejected_by_distribution;
            obs::Inc(c_rej_dist);
            continue;
          }
          forced_dist = true;
        }
        // Accept: commit the deltas (forced accepts included — the pairs
        // enter the dataset either way).
        m_syn->Commit(dp);
        n_syn->Commit(dn);
        syn_pos_count += delta_pos.size();
        syn_neg_count += delta_neg.size();
        current_jsd = jsd_new;
      } else {
        // Warmup: accumulate vectors until enough to fit O_syn.
        for (auto& v : delta_pos) warm_pos.push_back(std::move(v));
        for (auto& v : delta_neg) warm_neg.push_back(std::move(v));
      }
      report.tracked_pairs_pos += static_cast<long>(delta_pos.size());
      report.tracked_pairs_neg += static_cast<long>(delta_neg.size());
      obs::Inc(c_tracked_pos, delta_pos.size());
      obs::Inc(c_tracked_neg, delta_neg.size());

      if (forced_disc) {
        ++report.forced_accepts;
        ++report.forced_accepts_discriminator;
        obs::Inc(c_forced_disc);
      } else if (forced_dist) {
        ++report.forced_accepts;
        ++report.forced_accepts_distribution;
        obs::Inc(c_forced_dist);
      }
      obs::Observe(h_attempts, static_cast<double>(attempt + 1));
      e_new = std::move(candidate);
      is_match = sample.from_match;
      break;
    }

    // --- S2-4: add e' to the opposite table and record the label. ---
    size_t new_idx = append_entity(!e_from_a, std::move(e_new));
    ++report.accepted_entities;
    obs::Inc(c_accepted);
    if (e_from_a) {
      linked.push_back({e_idx, new_idx, is_match});
    } else {
      linked.push_back({new_idx, e_idx, is_match});
    }

    // Initialize the O_syn trackers once warmed up.
    if (options_.enable_rejection && m_syn == nullptr &&
        static_cast<size_t>(report.accepted_entities) >=
            options_.o_syn_warmup &&
        warm_pos.size() >= 4 && warm_neg.size() >= 4) {
      GmmFitOptions syn_fit = options_.gmm;
      syn_fit.max_components = std::max(report.m_components, 1);
      auto m0 = Gmm::FitWithAic(warm_pos, syn_fit);
      syn_fit.max_components = std::max(report.n_components, 1);
      auto n0 = Gmm::FitWithAic(warm_neg, syn_fit);
      if (m0.ok() && n0.ok()) {
        m_syn = std::make_unique<IncrementalGmm>(m0.value(), warm_pos);
        n_syn = std::make_unique<IncrementalGmm>(n0.value(), warm_neg);
        syn_pos_count = warm_pos.size();
        syn_neg_count = warm_neg.size();
        current_jsd = estimate_jsd(current_o_syn());
      }
    }
  }
  s2_span.Stop();

  if (syn.a.size() < na || syn.b.size() < nb) {
    // The guard tripped before the targets were reached: report the
    // shortfall loudly instead of silently handing back a smaller dataset.
    report.guard_exhausted = true;
    report.shortfall_a = na - syn.a.size();
    report.shortfall_b = nb - syn.b.size();
    obs::Inc(c_guard);
    SERD_LOG(kWarning) << syn.name << ": S2 guard exhausted after "
                       << max_iterations << " iterations; returning "
                       << syn.a.size() << "/" << na << " A and "
                       << syn.b.size() << "/" << nb << " B entities";
  }

  // --- S2-4 bookkeeping: explicit matching links. ---
  for (const auto& lp : linked) {
    if (lp.match) syn.matches.push_back({lp.a_idx, lp.b_idx});
  }

  // Last poll before the S3 scan commits to labeling the full pair
  // stream (the scan itself is not interrupted; at serving scales it is
  // bounded by max_label_pairs).
  if (cancel != nullptr && cancel->cancelled()) return cancel_status();

  // --- S3: label remaining pairs by posterior (paper Section IV-C). ---
  obs::TraceSpan s3_span(metrics_.get(), "s3.label");
  const size_t nb_rows = syn.b.size();
  std::unordered_set<uint64_t> known;
  for (const auto& lp : linked) {
    known.insert(static_cast<uint64_t>(lp.a_idx) * nb_rows + lp.b_idx);
  }
  const size_t total_pairs = syn.a.size() * nb_rows;

  // Resolve the blocking decision: explicit qgram, or auto once the pair
  // space is large enough that the exact scan dominates the run.
  const std::vector<size_t> gram_cols = cached_sim_->GramColumns();
  const bool blocked =
      total_pairs > 0 && !gram_cols.empty() &&
      (options_.blocking == SerdOptions::BlockingMode::kQgram ||
       (options_.blocking == SerdOptions::BlockingMode::kAuto &&
        total_pairs >= options_.blocking_auto_min_pairs));

  // Blocked enumeration: index B's q-gram profiles, generate candidate
  // pairs whose shared-gram count can clear the match threshold, and score
  // only those. Candidates are re-scored by the same GMM posterior below,
  // so blocked matches are a subset of the exact scan's (precision 1 by
  // construction); the recall estimate follows the labeling pass.
  block::CandidateSet cand;
  if (blocked) {
    obs::TraceSpan index_span(metrics_.get(), "s3.block_index");
    auto index_grams = [&](size_t row,
                           size_t col) -> const std::vector<uint32_t>& {
      return b_digests[row].grams[gram_cols[col]];
    };
    block::QgramIndex index = block::QgramIndex::Build(
        nb_rows, gram_cols.size(), index_grams, options_.block);
    auto probe_grams = [&](size_t row,
                           size_t col) -> const std::vector<uint32_t>& {
      return a_digests[row].grams[gram_cols[col]];
    };
    cand = block::GenerateCandidates(index, syn.a.size(), probe_grams,
                                     pool_.get());
    if (metrics_ != nullptr) {
      const block::IndexStats& is = index.stats();
      metrics_->gauge("s3.block_distinct_grams")->Set(is.distinct_grams);
      metrics_->gauge("s3.block_stop_grams")->Set(is.stop_grams);
      metrics_->gauge("s3.block_pruned_postings")->Set(is.pruned_postings);
      metrics_->gauge("s3.block_df_threshold")->Set(is.df_threshold);
    }
  }

  // The pair stream: candidate pairs when blocked, the full cross product
  // otherwise — both enumerate in ascending (i, j) order. A cap below the
  // stream size labels a seeded uniform subsample without replacement
  // (sorted, so the ascending order survives).
  const size_t stream_size = blocked ? cand.num_pairs() : total_pairs;
  const size_t scan_count =
      options_.max_label_pairs == 0
          ? stream_size
          : std::min(stream_size, options_.max_label_pairs);
  std::vector<size_t> subsample;
  if (scan_count < stream_size) {
    subsample = block::SampleDistinctSorted(stream_size, scan_count,
                                            options_.seed ^ 0x5e3b10cULL);
  }
  auto pair_at = [&](size_t k) -> std::pair<size_t, size_t> {
    const size_t pos = subsample.empty() ? k : subsample[k];
    if (blocked) return cand.PairAt(pos);
    return {pos / nb_rows, pos % nb_rows};
  };

  // Scanned pairs are labeled concurrently into a flag array, then
  // appended in ascending pair order, so the match list is identical to
  // the serial scan for any thread count. The scored tally excludes pairs
  // S2 already labeled (the `known` skips): its per-chunk sums commute, so
  // the atomic total is deterministic too.
  std::vector<uint8_t> is_match_flag(scan_count, 0);
  std::atomic<long> scored_pairs{0};
  runtime::ParallelFor(
      pool_.get(), 0, scan_count, 512, [&](size_t lo, size_t hi) {
        long scored = 0;
        Vec x;
        for (size_t k = lo; k < hi; ++k) {
          auto [i, j] = pair_at(k);
          uint64_t key = static_cast<uint64_t>(i) * nb_rows + j;
          if (known.count(key)) continue;
          ++scored;
          cached_sim_->SimilarityVectorInto(a_digests[i], b_digests[j], &x);
          if (o_real_.LabelAsMatch(x)) is_match_flag[k] = 1;
        }
        scored_pairs.fetch_add(scored, std::memory_order_relaxed);
      });
  size_t posterior_matches = 0;
  for (size_t k = 0; k < scan_count; ++k) {
    if (!is_match_flag[k]) continue;
    auto [i, j] = pair_at(k);
    syn.matches.push_back({i, j});
    ++posterior_matches;
  }

  // Recall harness: estimate the matches blocking pruned away from a
  // seeded uniform sample of the non-candidate pair space, scored by the
  // same posterior. Pure function of (options, dataset) — the sampling RNG
  // is separate from the synthesis stream, so dataset bytes are identical
  // with the estimator on or off.
  double block_recall = 1.0;
  bool block_recall_estimated = false;
  if (blocked && options_.block_recall_samples > 0 &&
      cand.num_pairs() < total_pairs) {
    block_recall_estimated = true;
    obs::TraceSpan recall_span(metrics_.get(), "s3.block_recall_estimate");
    Rng recall_rng(options_.seed ^ 0xb10c4ec5ULL);
    const size_t samples = std::min<size_t>(
        static_cast<size_t>(options_.block_recall_samples), total_pairs);
    size_t outside = 0, missed = 0;
    Vec x;
    for (size_t s = 0; s < samples; ++s) {
      const size_t flat = recall_rng.UniformInt(total_pairs);
      const size_t i = flat / nb_rows, j = flat % nb_rows;
      if (cand.Contains(i, static_cast<uint32_t>(j))) continue;
      if (known.count(static_cast<uint64_t>(flat))) continue;
      ++outside;
      cached_sim_->SimilarityVectorInto(a_digests[i], b_digests[j], &x);
      if (o_real_.LabelAsMatch(x)) ++missed;
    }
    const double pruned =
        static_cast<double>(total_pairs - cand.num_pairs());
    const double est_missed =
        outside > 0
            ? (static_cast<double>(missed) / static_cast<double>(outside)) *
                  pruned
            : 0.0;
    const double found = static_cast<double>(posterior_matches);
    block_recall = found + est_missed > 0.0
                       ? found / (found + est_missed)
                       : 1.0;
  }
  s3_span.Stop();

  report.s3_blocked = blocked;
  report.s3_total_pairs = static_cast<long>(total_pairs);
  report.s3_candidate_pairs = static_cast<long>(stream_size);
  report.s3_pruned_pairs = static_cast<long>(total_pairs - stream_size);
  report.s3_scanned_pairs = static_cast<long>(scan_count);
  report.s3_scored_pairs = scored_pairs.load(std::memory_order_relaxed);
  report.s3_posterior_matches = static_cast<long>(posterior_matches);
  report.s3_block_recall = block_recall;
  report.s3_block_recall_estimated = block_recall_estimated;
  if (metrics_ != nullptr) {
    metrics_->counter("s3.scanned_pairs")->Add(scan_count);
    metrics_->counter("s3.scored_pairs")
        ->Add(static_cast<uint64_t>(report.s3_scored_pairs));
    metrics_->counter("s3.candidates")->Add(stream_size);
    metrics_->counter("s3.pruned_pairs")->Add(total_pairs - stream_size);
    metrics_->counter("s3.posterior_matches")->Add(posterior_matches);
    metrics_->gauge("s3.block_recall")->Set(block_recall);
    metrics_->gauge("s3.block_recall_estimated")
        ->Set(block_recall_estimated ? 1.0 : 0.0);
    metrics_->gauge("s3.blocked")->Set(blocked ? 1.0 : 0.0);
  }

  if (m_syn != nullptr && n_syn != nullptr) {
    report.jsd_real_vs_syn = estimate_jsd(current_o_syn());
  }
  if (pool_ != nullptr) {
    report.parallel_speedup = pool_->stats().Speedup();
  } else {
    report.parallel_speedup = 1.0;
  }
  const BankDecodeTotals decode_after = bank_decode_totals();
  report.decode_steps = decode_after.steps - decode_before.steps;
  report.decode_cached_steps = decode_after.cached - decode_before.cached;
  report.decode_quantized_steps =
      decode_after.quantized - decode_before.quantized;
  report.encoder_cache_hits = decode_after.hits - decode_before.hits;
  report.encoder_cache_misses = decode_after.misses - decode_before.misses;
  report.online_seconds = timer.Seconds();
  if (metrics_ != nullptr) {
    metrics_->gauge("run.online_seconds")->Set(report.online_seconds);
    metrics_->gauge("run.parallel_speedup")->Set(report.parallel_speedup);
  }
  if (options_.verbose) {
    SERD_LOG(kInfo) << syn.name << ": accepted=" << report.accepted_entities
                    << " rej_disc=" << report.rejected_by_discriminator
                    << " rej_dist=" << report.rejected_by_distribution
                    << " forced=" << report.forced_accepts
                    << " jsd=" << report.jsd_real_vs_syn;
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    report_ = report;
  }
  return syn;
}

obs::Json SerdSynthesizer::RunManifestJson() const {
  // Snapshot read: holds the state mutex for the whole build, pairing
  // with the mutators' commit locks (the pool-stats and metrics-registry
  // reads below take their own internal locks; no lock ordering cycle —
  // nothing acquires state_mu_ while holding those).
  std::lock_guard<std::mutex> lock(state_mu_);
  obs::Json root = obs::Json::Object();
  root.Set("dataset", real_->name);

  obs::Json opts = obs::Json::Object();
  opts.Set("seed", options_.seed);
  opts.Set("threads", options_.threads);
  opts.Set("threads_resolved", resolved_threads_);
  opts.Set("alpha", options_.alpha);
  opts.Set("beta", options_.beta);
  opts.Set("enable_rejection", options_.enable_rejection);
  opts.Set("max_reject_retries", options_.max_reject_retries);
  opts.Set("rejection_partner_sample", options_.rejection_partner_sample);
  opts.Set("jsd_samples", options_.jsd_samples);
  opts.Set("o_syn_warmup", options_.o_syn_warmup);
  opts.Set("max_loop_iterations", options_.max_loop_iterations);
  opts.Set("target_a", options_.target_a);
  opts.Set("target_b", options_.target_b);
  opts.Set("match_link_rate", options_.match_link_rate);
  opts.Set("max_label_pairs", options_.max_label_pairs);
  opts.Set("blocking", BlockingModeName(options_.blocking));
  opts.Set("blocking_auto_min_pairs", options_.blocking_auto_min_pairs);
  opts.Set("block_max_df_frac", options_.block.max_df_frac);
  opts.Set("block_min_df_rows", options_.block.min_df_rows);
  opts.Set("block_min_shared_grams", options_.block.min_shared_grams);
  opts.Set("block_jaccard_tau", options_.block.jaccard_tau);
  opts.Set("block_prefix_jaccard", options_.block.prefix_jaccard);
  opts.Set("block_recall_samples", options_.block_recall_samples);
  opts.Set("observability", options_.observability);
  opts.Set("incremental_decode", options_.string_bank.incremental_decode);
  opts.Set("batched_decode", options_.string_bank.batched_decode);
  opts.Set("batched_lockstep", options_.string_bank.batched_lockstep);
  opts.Set("decode_precision",
           DecodePrecisionName(options_.string_bank.decode_precision));
  opts.Set("model_dir", options_.model_dir);
  opts.Set("artifact_mode", static_cast<int>(options_.artifact_mode));
  root.Set("options", std::move(opts));

  obs::Json rep = obs::Json::Object();
  rep.Set("offline_seconds", report_.offline_seconds);
  rep.Set("online_seconds", report_.online_seconds);
  rep.Set("accepted_entities", report_.accepted_entities);
  rep.Set("rejected_by_discriminator", report_.rejected_by_discriminator);
  rep.Set("rejected_by_distribution", report_.rejected_by_distribution);
  rep.Set("forced_accepts", report_.forced_accepts);
  rep.Set("forced_accepts_discriminator",
          report_.forced_accepts_discriminator);
  rep.Set("forced_accepts_distribution",
          report_.forced_accepts_distribution);
  rep.Set("tracked_pairs_pos", static_cast<int64_t>(report_.tracked_pairs_pos));
  rep.Set("tracked_pairs_neg", static_cast<int64_t>(report_.tracked_pairs_neg));
  rep.Set("jsd_evaluations", static_cast<int64_t>(report_.jsd_evaluations));
  rep.Set("decode_steps", static_cast<int64_t>(report_.decode_steps));
  rep.Set("decode_cached_steps",
          static_cast<int64_t>(report_.decode_cached_steps));
  rep.Set("decode_quantized_steps",
          static_cast<int64_t>(report_.decode_quantized_steps));
  rep.Set("encoder_cache_hits",
          static_cast<int64_t>(report_.encoder_cache_hits));
  rep.Set("encoder_cache_misses",
          static_cast<int64_t>(report_.encoder_cache_misses));
  rep.Set("s3_blocked", report_.s3_blocked);
  rep.Set("s3_total_pairs", static_cast<int64_t>(report_.s3_total_pairs));
  rep.Set("s3_candidate_pairs",
          static_cast<int64_t>(report_.s3_candidate_pairs));
  rep.Set("s3_pruned_pairs", static_cast<int64_t>(report_.s3_pruned_pairs));
  rep.Set("s3_scanned_pairs", static_cast<int64_t>(report_.s3_scanned_pairs));
  rep.Set("s3_scored_pairs", static_cast<int64_t>(report_.s3_scored_pairs));
  rep.Set("s3_posterior_matches",
          static_cast<int64_t>(report_.s3_posterior_matches));
  rep.Set("s3_block_recall", report_.s3_block_recall);
  rep.Set("s3_block_recall_estimated", report_.s3_block_recall_estimated);
  rep.Set("guard_exhausted", report_.guard_exhausted);
  rep.Set("shortfall_a", report_.shortfall_a);
  rep.Set("shortfall_b", report_.shortfall_b);
  rep.Set("mean_bank_epsilon", report_.mean_bank_epsilon);
  rep.Set("warm_started", report_.warm_started);
  rep.Set("jsd_real_vs_syn", report_.jsd_real_vs_syn);
  rep.Set("m_components", report_.m_components);
  rep.Set("n_components", report_.n_components);
  rep.Set("threads_used", report_.threads_used);
  rep.Set("parallel_speedup", report_.parallel_speedup);
  root.Set("report", std::move(rep));

  if (pool_ != nullptr) {
    runtime::ThreadPool::Stats stats = pool_->stats();
    obs::Json pool = obs::Json::Object();
    pool.Set("workers", pool_->num_threads());
    pool.Set("regions", static_cast<int64_t>(stats.regions));
    pool.Set("busy_seconds", stats.busy_seconds);
    pool.Set("wall_seconds", stats.wall_seconds);
    pool.Set("speedup", stats.Speedup());
    root.Set("pool", std::move(pool));
  }

  if (metrics_ != nullptr) {
    root.Set("metrics", obs::SnapshotToJson(metrics_->TakeSnapshot()));
  }
  return root;
}

LabeledPairSet SerdSynthesizer::LabelPairs(const ERDataset& syn,
                                           double neg_per_pos,
                                           Rng* rng) const {
  return BuildLabeledPairs(syn, neg_per_pos, rng, pool_.get());
}

Result<double> SerdSynthesizer::EvaluateSyntheticJsd(const ERDataset& syn,
                                                     int jsd_samples,
                                                     uint64_t seed) const {
  if (!fitted_) {
    return Status::FailedPrecondition("Fit() must succeed first");
  }
  Rng rng(seed);
  LabeledPairSet pairs = BuildLabeledPairs(syn, options_.neg_pairs_per_match,
                                           &rng, pool_.get());
  std::vector<Vec> x_pos, x_neg;
  ComputeSimilarityVectors(syn, spec_, pairs, &x_pos, &x_neg, pool_.get());
  if (x_pos.empty() || x_neg.empty()) {
    return Status::FailedPrecondition(
        "synthesized dataset lacks matching or non-matching pairs");
  }
  auto m_fit = Gmm::FitWithAic(x_pos, options_.gmm);
  SERD_RETURN_IF_ERROR(m_fit.status());
  auto n_fit = Gmm::FitWithAic(x_neg, options_.gmm);
  SERD_RETURN_IF_ERROR(n_fit.status());
  double pi = static_cast<double>(x_pos.size()) /
              static_cast<double>(x_pos.size() + x_neg.size());
  ODistribution o_syn(pi, m_fit.value(), n_fit.value());
  return EstimateJsd(o_syn, o_real_, jsd_samples, seed ^ 0x9e37ULL,
                     pool_.get());
}

}  // namespace serd
