#ifndef SERD_CORE_SERD_H_
#define SERD_CORE_SERD_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "block/candidates.h"
#include "block/qgram_index.h"
#include "common/cancel.h"
#include "core/cached_sim.h"
#include "data/er_dataset.h"
#include "gan/entity_gan.h"
#include "gmm/incremental.h"
#include "gmm/o_distribution.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"
#include "seq2seq/model_bank.h"

namespace serd {

/// All knobs of the SERD pipeline. Defaults follow the paper's settings
/// (Section VII): alpha = 1, beta = 0.6, 10 similarity intervals, 10
/// candidate strings; model/corpus sizes are CPU-scale (DESIGN.md).
struct SerdOptions {
  // --- S1: distribution learning ---
  GmmFitOptions gmm;
  /// Non-matching pairs sampled per matching pair when estimating the
  /// N-distribution (the full cross product is quadratic).
  double neg_pairs_per_match = 10.0;

  // --- S2: synthesis loop ---
  size_t target_a = 0;  ///< 0 = |A_real|
  size_t target_b = 0;  ///< 0 = |B_real|
  /// Probability that S2-2 samples the similarity vector from the
  /// M-distribution (i.e., that the new entity is linked as a match). The
  /// paper uses the mixture weight pi, but pi is relative to the labeled
  /// pair sample, not to entity insertions; to make |M_syn| track |M_real|
  /// the link rate must be |M_real| / (n_a + n_b). 0 (the default) selects
  /// that automatic rate (clamped to [0.02, 0.9]); set explicitly to
  /// override (e.g. to the raw pi for a paper-literal run).
  double match_link_rate = 0.0;
  bool enable_rejection = true;  ///< false reproduces the SERD- baseline
  double alpha = 1.0;   ///< distribution-rejection slack (paper Eq. 10)
  double beta = 0.6;    ///< discriminator acceptance threshold
  int max_reject_retries = 4;   ///< re-synthesis attempts before forcing
  int rejection_partner_sample = 24;  ///< t of paper Remark (1)
  int jsd_samples = 192;        ///< Monte-Carlo draws per JSD estimate
  size_t o_syn_warmup = 12;     ///< entities accepted before O_syn tracking
  /// Hard cap on S2 guard-loop iterations; 0 selects the automatic bound
  /// 60 * (target_a + target_b) + 1000. Exhausting the cap returns an
  /// undersized dataset and sets SerdReport::guard_exhausted (+ shortfall
  /// fields) instead of failing — callers decide whether that is fatal.
  size_t max_loop_iterations = 0;

  // --- string synthesis (Section VI) ---
  StringBankOptions string_bank;

  // --- GAN (cold start + rejection case 1) ---
  GanConfig gan;
  EntityEncoderOptions encoder;

  // --- S3: labeling ---
  /// Cap on cross pairs examined in the final labeling pass (0 = all).
  /// When the pair stream exceeds the cap, a uniform sample without
  /// replacement (Floyd's algorithm, seeded from `seed`) is labeled.
  size_t max_label_pairs = 250000;

  /// How S3 enumerates the cross-pair space (DESIGN.md Section 5j).
  ///   kOff   — exact O(|A|·|B|) scan (the reference behavior).
  ///   kQgram — only candidate pairs from the q-gram inverted index are
  ///            scored. Candidates are re-scored by the same GMM
  ///            posterior, so blocked matches are a subset of the exact
  ///            ones (precision 1 by construction); the measured recall
  ///            is estimated per run (SerdReport::s3_block_recall).
  ///   kAuto  — kQgram when the pair count reaches
  ///            blocking_auto_min_pairs, else the exact scan.
  enum class BlockingMode { kOff, kQgram, kAuto };
  BlockingMode blocking = BlockingMode::kOff;
  /// Pair-count threshold at which kAuto switches to the q-gram index.
  size_t blocking_auto_min_pairs = 1u << 20;
  /// Index construction / candidate generation knobs.
  block::BlockOptions block;
  /// Uniform pair draws behind the per-run recall estimate (0 disables;
  /// the estimate then reports 1.0). Sampling is seeded and independent
  /// of the synthesis RNG, so it never perturbs the dataset bytes.
  int block_recall_samples = 2048;

  // --- artifact store (warm start; DESIGN.md Section 5g) ---
  /// What Fit() does with `model_dir` when it is non-empty.
  enum class ArtifactMode {
    kAuto,  ///< load if a valid artifact exists, else train and save
    kLoad,  ///< load or fail — never train (guarantees no DP budget spend)
    kSave,  ///< always train, then save (overwrites any existing artifact)
  };

  /// Directory holding the model artifact (kModelFileName). Empty (the
  /// default) disables the artifact store entirely. When a valid artifact
  /// is loaded, Fit() skips the whole offline phase — S1 GMM fitting, DP
  /// transformer training, and GAN training — and Synthesize() produces
  /// bit-identical output to a cold run with the same options and seed.
  std::string model_dir;
  ArtifactMode artifact_mode = ArtifactMode::kAuto;

  uint64_t seed = 2024;
  bool verbose = false;

  // --- observability ---
  /// When true the synthesizer owns an obs::MetricsRegistry and every
  /// stage records counters/histograms/trace spans into it (see
  /// DESIGN.md "Observability"); RunManifestJson() then carries a full
  /// metrics snapshot. When false (default) no registry exists and every
  /// recording site reduces to a null-pointer test — synthesis output is
  /// byte-identical either way.
  bool observability = false;

  // --- runtime ---
  /// Worker threads for the parallel hot paths (GMM EM, similarity
  /// batches, S3 labeling, JSD sampling, per-example training). 0 uses
  /// hardware_concurrency; 1 runs serial. Results are bit-identical for
  /// any value (see DESIGN.md "Deterministic parallel runtime").
  int threads = 0;
};

/// Outcome statistics of one synthesis run (feeds Tables III-IV and the
/// ablation benches).
struct SerdReport {
  double offline_seconds = 0.0;  ///< transformer banks + GAN training
  double online_seconds = 0.0;   ///< the S2/S3 synthesis loop
  int accepted_entities = 0;
  int rejected_by_discriminator = 0;
  int rejected_by_distribution = 0;
  int forced_accepts = 0;        ///< retries exhausted (sum of the two below)
  /// Forced accepts whose last attempt failed the discriminator test
  /// (paper Section V case 1) vs. the Eq. 10 distribution test (case 2).
  int forced_accepts_discriminator = 0;
  int forced_accepts_distribution = 0;
  /// Similarity vectors fed into O_syn tracking (warmup accumulation plus
  /// committed deltas), split by the Eq. 9 label. Forced accepts
  /// contribute here too — O_syn must track every pair the dataset
  /// actually contains.
  long tracked_pairs_pos = 0;
  long tracked_pairs_neg = 0;
  long jsd_evaluations = 0;      ///< EstimateJsd calls during Synthesize()
  /// String-bank decode accounting for this run (summed over the text
  /// columns' banks): next-token logits rows computed, how many went
  /// through the KV-cached incremental path, and encoder-memory cache
  /// traffic. cached = 0 when running with incremental_decode off
  /// (--reference-decode).
  long decode_steps = 0;
  long decode_cached_steps = 0;
  /// Cached steps whose projections ran through the int8/bf16 kernels
  /// (0 under fp32 decode; == decode_cached_steps under int8/bf16).
  long decode_quantized_steps = 0;
  long encoder_cache_hits = 0;
  long encoder_cache_misses = 0;
  /// --- S3 labeling accounting. ---
  /// True when this run's S3 used the q-gram blocking index.
  bool s3_blocked = false;
  /// |A_syn| * |B_syn|: the full cross-pair space S3 is responsible for.
  long s3_total_pairs = 0;
  /// Pairs surviving blocking (== s3_total_pairs for the exact scan).
  long s3_candidate_pairs = 0;
  /// Pairs the index pruned without scoring (total - candidates).
  long s3_pruned_pairs = 0;
  /// Pairs enumerated by the labeling loop (candidates, after the
  /// max_label_pairs subsample).
  long s3_scanned_pairs = 0;
  /// Pairs actually scored through the GMM posterior. Scanned pairs
  /// already labeled by S2 (the `known` set) are skipped, so scored <
  /// scanned whenever S2 linked pairs fall inside the scan — the number
  /// bench deltas must compare (the old s3.scanned_pairs counted the
  /// skips as work).
  long s3_scored_pairs = 0;
  /// Matches S3 added on top of the S2-linked ones.
  long s3_posterior_matches = 0;
  /// Estimated recall of the blocked match set vs the exact scan: blocked
  /// matches / (blocked matches + missed-match estimate from a seeded
  /// uniform sample of the pruned pair space). Exactly 1.0 when blocking
  /// is off (precision is 1.0 by construction either way — candidates are
  /// re-scored by the same posterior).
  double s3_block_recall = 1.0;
  /// True when s3_block_recall is the sampled estimate (blocking pruned
  /// pairs and the estimator ran) rather than the trivially-exact 1.0 of
  /// an unblocked full scan. Blocked-only runs (e.g. iTunes-Amazon at
  /// scale 1.0, where the exact scan is out of reach) publish recall into
  /// the same field measured runs use; this flag keeps estimated and
  /// measured values from ever being conflated downstream.
  bool s3_block_recall_estimated = false;
  /// True when the S2 guard loop hit its iteration cap before reaching the
  /// target sizes; the returned dataset is short by shortfall_a/_b rows.
  bool guard_exhausted = false;
  size_t shortfall_a = 0;
  size_t shortfall_b = 0;
  double mean_bank_epsilon = 0.0;  ///< mean DP epsilon across string banks
  double jsd_real_vs_syn = 0.0;    ///< JSD(O_real, O_syn) at the end
  int m_components = 0;          ///< AIC-selected component counts
  int n_components = 0;
  /// True when Fit() restored the offline models from an artifact instead
  /// of training them (offline_seconds is then the load time). An offline
  /// field: ResetOnlineStats keeps it.
  bool warm_started = false;
  int threads_used = 1;          ///< resolved SerdOptions::threads
  /// Achieved parallel speedup of the last Synthesize(): total busy time
  /// across executors / wall time inside parallel regions. 1.0 when serial.
  double parallel_speedup = 1.0;

  /// Resets the per-run (online) statistics in place, keeping everything
  /// the offline Fit() phase computed. New online fields must be added
  /// here; resetting field-by-field (instead of copying the keepers into a
  /// fresh struct) means a forgotten field surfaces as stale data rather
  /// than being silently zeroed along with the offline numbers.
  void ResetOnlineStats() {
    online_seconds = 0.0;
    accepted_entities = 0;
    rejected_by_discriminator = 0;
    rejected_by_distribution = 0;
    forced_accepts = 0;
    forced_accepts_discriminator = 0;
    forced_accepts_distribution = 0;
    tracked_pairs_pos = 0;
    tracked_pairs_neg = 0;
    jsd_evaluations = 0;
    decode_steps = 0;
    decode_cached_steps = 0;
    decode_quantized_steps = 0;
    encoder_cache_hits = 0;
    encoder_cache_misses = 0;
    s3_blocked = false;
    s3_total_pairs = 0;
    s3_candidate_pairs = 0;
    s3_pruned_pairs = 0;
    s3_scanned_pairs = 0;
    s3_scored_pairs = 0;
    s3_posterior_matches = 0;
    s3_block_recall = 1.0;
    s3_block_recall_estimated = false;
    guard_exhausted = false;
    shortfall_a = 0;
    shortfall_b = 0;
    jsd_real_vs_syn = 0.0;
    threads_used = 1;
    parallel_speedup = 1.0;
  }
};

/// The SERD synthesizer (paper Algorithm overview, Section III):
///   S1 learn the M-/N-distributions of E_real as GMMs (EM + AIC),
///   S2 iteratively sample (entity, similarity vector) and synthesize a
///      new entity per column type, with GAN-discriminator and
///      JSD-distribution rejection,
///   S3 label remaining pairs by GMM posterior.
///
/// Privacy architecture (paper Figure 2): Fit() consumes only
/// (a) similarity vectors of E_real — not entity values — and
/// (b) background corpora/entities disjoint from the active domain, on
/// which the transformers are trained with DP-SGD. The single exception,
/// as in the paper, is the categorical value domain (paper Section IV-B1
/// iterates e'[C_i] over the existing categorical values).
///
/// Thread-safety: one synthesizer is a single-writer object — at most one
/// thread may be inside Fit(), Synthesize(), LoadModels(), set_seed(), or
/// set_enable_rejection() at a time (the serving model pool serializes
/// runs with a per-entry lease mutex). Snapshot reads are safe against
/// that writer: RunManifestJson() may be called from any thread at any
/// time, because every mutator commits its state (models, report) under
/// an internal mutex after a validate/compute phase on locals, and
/// RunManifestJson() reads under the same mutex. report() returns an
/// unsynchronized reference and is only meaningful between runs.
class SerdSynthesizer {
 public:
  SerdSynthesizer(const ERDataset& real, SerdOptions options);

  /// S1 plus offline model training. `background_text_corpora` holds one
  /// corpus per *text* column, in schema order of the text columns;
  /// `background_entities` is a table of same-schema entities from the
  /// background domain (GAN training and cold-start decode pools).
  Status Fit(const std::vector<std::vector<std::string>>&
                 background_text_corpora,
             const Table& background_entities);

  /// S2 + S3. Requires Fit() to have succeeded.
  ///
  /// `cancel` (optional) is polled cooperatively: once per S2 guard-loop
  /// iteration, once per rejection attempt, before the S3 labeling scan,
  /// and inside the string banks' candidate-decode early-stop callbacks —
  /// so a running job stops within one loop iteration of the token
  /// tripping. A cancelled run returns the token's cause
  /// (kCancelled/kDeadlineExceeded) and mutates nothing: the run
  /// accumulates into locals and commits the report only on success, so a
  /// re-run of the same job afterwards is byte-identical to a run that
  /// was never cancelled.
  Result<ERDataset> Synthesize(const CancelToken* cancel = nullptr);

  /// File name of the model artifact inside SerdOptions::model_dir.
  static constexpr char kModelFileName[] = "serd_models.bin";

  /// Serializes every offline model (O_real, string banks, GAN, decode
  /// pools) to `dir`/kModelFileName — versioned, per-section checksummed
  /// (src/artifact). Creates `dir` if missing. Requires a successful
  /// Fit(); Fit() calls this itself when SerdOptions::model_dir is set.
  Status SaveModels(const std::string& dir) const;

  /// Restores the offline models from `dir`/kModelFileName, replacing any
  /// fitted state. Validates the artifact's checksums and its recorded
  /// schema against this synthesizer's dataset; on any failure the
  /// synthesizer is left exactly as it was (no partial state) and a
  /// descriptive Status is returned. On success the synthesizer behaves
  /// as if Fit() had just trained these models: Synthesize() output is
  /// bit-identical to the run that saved them (same options and seed),
  /// and the DP epsilon recorded at training time is carried over into
  /// the report without spending any further budget.
  ///
  /// The whole validate/decode phase works on locals; the final commit of
  /// the decoded models into the synthesizer happens under the internal
  /// state mutex, so concurrent RunManifestJson() calls observe either
  /// the pre-load or the post-load state, never a mix.
  Status LoadModels(const std::string& dir);

  /// Unsynchronized view of the run report; read it between runs (see the
  /// class thread-safety contract).
  const SerdReport& report() const { return report_; }
  const ODistribution& o_real() const { return o_real_; }
  const SimilaritySpec& spec() const { return spec_; }

  /// The run's metrics registry; null unless SerdOptions::observability.
  obs::MetricsRegistry* metrics() const { return metrics_.get(); }

  /// Run manifest: options, seed, report, pool utilization, and (when
  /// observability is on) a full metrics snapshot — one self-describing
  /// JSON artifact per run, written by `serd_cli --manifest` and the
  /// bench harnesses.
  obs::Json RunManifestJson() const;

  /// Toggles rejection (paper Section V) without refitting the offline
  /// models, so SERD and the SERD- baseline share one Fit() (their offline
  /// phase is identical by construction). Resets the run statistics.
  void set_enable_rejection(bool enabled) {
    std::lock_guard<std::mutex> lock(state_mu_);
    options_.enable_rejection = enabled;
    report_.ResetOnlineStats();
  }

  /// Switches the S3 enumeration strategy for the next Synthesize() (the
  /// offline models are untouched; blocking only affects which pairs S3
  /// scores). Lets the serving pool honor per-job blocking requests on a
  /// warm entry, and lets the agreement tests run exact-vs-blocked from
  /// one Fit(). Resets the run statistics.
  void set_blocking(SerdOptions::BlockingMode mode) {
    std::lock_guard<std::mutex> lock(state_mu_);
    options_.blocking = mode;
    report_.ResetOnlineStats();
  }

  /// Switches the candidate-decode mode of every trained string bank for
  /// the next Synthesize() (serve jobs toggle it per request on a warm
  /// entry). Lane-batched decode draws from per-candidate RNG streams, so
  /// flipping it changes released bytes — callers opt in per job
  /// (DESIGN.md §5k). Resets the run statistics.
  void set_batched_decode(bool enabled) {
    std::lock_guard<std::mutex> lock(state_mu_);
    options_.string_bank.batched_decode = enabled;
    for (auto& bank : banks_) {
      if (bank != nullptr) bank->set_batched_decode(enabled);
    }
    report_.ResetOnlineStats();
  }

  /// Switches the decode precision of every trained string bank for the
  /// next Synthesize() (serve jobs request it per job on a warm entry; the
  /// ModelPool keys entries by precision so fp32 and int8 tenants never
  /// share one). Quantizing is cheap and idempotent — models restored from
  /// a pre-quantized artifact at the same precision keep their attached
  /// weights. int8/bf16 logits differ from fp32, so released bytes change;
  /// quality is gated e2e (F1/JSD delta bounds, DESIGN.md §5m). Resets the
  /// run statistics.
  void set_decode_precision(nn::DecodePrecision precision) {
    std::lock_guard<std::mutex> lock(state_mu_);
    options_.string_bank.decode_precision = precision;
    for (auto& bank : banks_) {
      if (bank != nullptr) bank->set_decode_precision(precision);
    }
    report_.ResetOnlineStats();
  }

  /// Re-seeds the *online* phase for the next Synthesize() and resets the
  /// run statistics, leaving the fitted offline models untouched. This is
  /// what lets the serving model pool reuse one warm synthesizer across
  /// jobs: Synthesize() after set_seed(s) is bit-identical to a fresh
  /// synthesizer built with SerdOptions::seed = s over the same loaded
  /// artifact (training seeds are derived from the seed too, but they are
  /// only consumed by Fit(), never by the decode path).
  void set_seed(uint64_t seed) {
    std::lock_guard<std::mutex> lock(state_mu_);
    options_.seed = seed;
    report_.ResetOnlineStats();
  }

  /// Offline models (for the Exp-1 user-study harness; null before Fit).
  const EntityGan* gan() const { return gan_.get(); }
  const EntityEncoder* encoder() const { return encoder_.get(); }

  /// Labels an arbitrary pair set of a synthesized dataset by the GMM
  /// posterior (used to build matcher training data from E_syn).
  LabeledPairSet LabelPairs(const ERDataset& syn, double neg_per_pos,
                            Rng* rng) const;

  /// Post-hoc, trajectory-independent distribution quality measure:
  /// samples labeled pairs from `syn`, fits fresh M-/N-GMMs to their
  /// similarity vectors, and returns the Monte-Carlo JSD against O_real.
  /// This is what the paper's Eq. 3 objective actually asks of the final
  /// dataset (the online tracker in Synthesize() is an incremental
  /// approximation used only for the rejection decision).
  Result<double> EvaluateSyntheticJsd(const ERDataset& syn,
                                      int jsd_samples = 512,
                                      uint64_t seed = 12345) const;

 private:
  struct PendingEntity {
    Entity entity;
    CachedSimilarity::Digest digest;
  };

  /// Precomputed categorical similarities for one column:
  /// rows[index[v]][j] == ColumnSimilarity(c, v, domain[j]). Synthesizing a
  /// categorical cell previously scanned the full domain twice, rebuilding
  /// both q-gram sets per comparison; with the table it is one hash lookup
  /// plus a linear pass over a precomputed row. Sources outside the domain
  /// (cold-start decodes from the background pool) fall back to computing
  /// their row on the fly.
  struct CatSimTable {
    std::unordered_map<std::string, size_t> index;
    std::vector<std::vector<double>> rows;
  };

  /// Synthesizes e' from e so that sim(e, e') ≈ x (paper Section IV-B1).
  Entity SynthesizeFrom(const Entity& e, const Vec& x, Rng* rng) const;

  /// Cold start (paper Section IV-B2): GAN features decoded against the
  /// background pools.
  Entity ColdStartEntity(Rng* rng) const;

  /// Case-1 rejection: discriminator score < beta.
  bool RejectedByDiscriminator(const Entity& e) const;

  const ERDataset* real_;
  SerdOptions options_;
  SimilaritySpec spec_;
  std::unique_ptr<CachedSimilarity> cached_sim_;
  /// One table per column; only categorical columns are populated.
  std::vector<CatSimTable> cat_sim_;
  /// Shared worker pool for every parallel hot path; null when the
  /// resolved thread count is 1 (pure serial, no pool overhead). The pool
  /// holds `threads - 1` workers because the calling thread participates
  /// in every parallel region.
  std::unique_ptr<runtime::ThreadPool> pool_;
  size_t resolved_threads_ = 1;
  /// Owned registry; allocated in the constructor iff
  /// options_.observability, and threaded into the gmm/string-bank/GAN
  /// sub-options so every stage shares it.
  std::unique_ptr<obs::MetricsRegistry> metrics_;

  ODistribution o_real_;
  std::vector<std::unique_ptr<StringSynthesisBank>> banks_;  // per column (null for non-text)
  std::unique_ptr<EntityEncoder> encoder_;
  std::unique_ptr<EntityGan> gan_;
  std::vector<std::vector<std::string>> decode_pools_;

  bool fitted_ = false;
  /// Wall-clock seconds of the training run that produced the current
  /// offline models — surviving any number of save/load cycles, so a
  /// re-saved artifact is byte-identical to its source (report_'s
  /// offline_seconds becomes the load time after a warm start).
  double source_offline_seconds_ = 0.0;
  SerdReport report_;
  /// Guards the commit of mutator results (models, options_.seed,
  /// report_, fitted_) and every RunManifestJson() read — see the class
  /// thread-safety contract.
  mutable std::mutex state_mu_;
};

/// Stable wire/CLI names of the blocking modes: "off", "qgram", "auto".
const char* BlockingModeName(SerdOptions::BlockingMode mode);

/// Parses a BlockingModeName back; false on an unknown name.
bool ParseBlockingMode(const std::string& name,
                       SerdOptions::BlockingMode* mode);

/// Stable wire/CLI names of the decode precisions: "fp32", "bf16", "int8".
const char* DecodePrecisionName(nn::DecodePrecision precision);

/// Parses a DecodePrecisionName back; false on an unknown name.
bool ParseDecodePrecision(const std::string& name,
                          nn::DecodePrecision* precision);

/// Buckets an artifact load failure (a LoadModels() Status) into a short
/// stable cause tag: "io" (missing/unreadable file), "crc", "format",
/// "schema", "version", "missing_section", or "decode". Feeds the
/// artifact.load_fail_<cause> counters and the CLI error line.
const char* ArtifactLoadFailureCause(const Status& status);

/// Distinct process exit code for an artifact load failure, so scripts
/// can tell "wrong path" from "corrupt file" from "wrong schema" without
/// parsing stderr: 0 for OK, 3 io, 4 corrupt bytes (crc/format/
/// missing_section), 5 schema mismatch, 6 format-version skew, 7 other
/// decode rejection. serd_cli exits with this code when --load-models
/// fails.
int ArtifactLoadExitCode(const Status& status);

}  // namespace serd

#endif  // SERD_CORE_SERD_H_
