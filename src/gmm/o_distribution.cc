#include "gmm/o_distribution.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "runtime/parallel_for.h"
#include "runtime/sharded_rng.h"

namespace serd {

ODistribution::ODistribution(double pi, Gmm m, Gmm n)
    : pi_(pi), m_(std::move(m)), n_(std::move(n)) {
  SERD_CHECK(pi_ >= 0.0 && pi_ <= 1.0);
  SERD_CHECK_EQ(m_.dimension(), n_.dimension());
}

double ODistribution::LogPdf(const Vec& x) const {
  double log_m = (pi_ > 0.0 ? std::log(pi_) + m_.LogPdf(x)
                            : -std::numeric_limits<double>::infinity());
  double log_n = (pi_ < 1.0 ? std::log(1.0 - pi_) + n_.LogPdf(x)
                            : -std::numeric_limits<double>::infinity());
  double hi = std::max(log_m, log_n);
  if (!std::isfinite(hi)) return hi;
  return hi + std::log(std::exp(log_m - hi) + std::exp(log_n - hi));
}

ODistribution::SampleResult ODistribution::Sample(Rng* rng) const {
  SampleResult out = SampleUnclamped(rng);
  for (double& v : out.x) v = std::clamp(v, 0.0, 1.0);
  return out;
}

ODistribution::SampleResult ODistribution::SampleUnclamped(Rng* rng) const {
  SERD_CHECK(rng != nullptr);
  bool from_match = rng->Bernoulli(pi_);
  Vec x = from_match ? m_.Sample(rng) : n_.Sample(rng);
  return {std::move(x), from_match};
}

double ODistribution::PosteriorMatch(const Vec& x) const {
  if (pi_ <= 0.0) return 0.0;
  if (pi_ >= 1.0) return 1.0;
  double log_m = std::log(pi_) + m_.LogPdf(x);
  double log_n = std::log(1.0 - pi_) + n_.LogPdf(x);
  double hi = std::max(log_m, log_n);
  double zm = std::exp(log_m - hi);
  double zn = std::exp(log_n - hi);
  return zm / (zm + zn);
}

namespace {

/// Draws per Monte-Carlo block; each block owns an independent RNG stream
/// so the estimate is thread-count independent. Fixed by contract.
constexpr int kJsdBlock = 64;

/// Sum over one block of draws from `sampler` of the sampled side's log
/// density minus the log mixture density.
double JsdBlockSum(const ODistribution& sample_side, const ODistribution& p,
                   const ODistribution& q, int lo, int hi, Rng* rng) {
  constexpr double kLogHalf = -0.6931471805599453;
  double sum = 0.0;
  for (int i = lo; i < hi; ++i) {
    // Unclamped: the estimator must sample the density it scores (see
    // SampleUnclamped); clamped draws bias both KL terms at the cube
    // boundary.
    Vec x = sample_side.SampleUnclamped(rng).x;
    double lp = p.LogPdf(x);
    double lq = q.LogPdf(x);
    double hi_l = std::max(lp, lq);
    double log_mix = kLogHalf + hi_l + std::log(std::exp(lp - hi_l) +
                                                std::exp(lq - hi_l));
    sum += (&sample_side == &p ? lp : lq) - log_mix;
  }
  return sum;
}

}  // namespace

double EstimateJsd(const ODistribution& p, const ODistribution& q,
                   int num_samples, uint64_t seed,
                   runtime::ThreadPool* pool) {
  SERD_CHECK_GT(num_samples, 0);
  // Even blocks draw from p, odd blocks from q; block b uses the RNG stream
  // derived from (seed, b). Partial sums are folded in block order.
  const size_t blocks_per_side =
      (static_cast<size_t>(num_samples) + kJsdBlock - 1) / kJsdBlock;
  struct KlPair {
    double kl_p = 0.0;
    double kl_q = 0.0;
  };
  KlPair kl = runtime::ParallelReduce<KlPair>(
      pool, 0, 2 * blocks_per_side, 1, KlPair{},
      [&](size_t lo, size_t hi) {
        KlPair part;
        for (size_t b = lo; b < hi; ++b) {
          const bool from_p = (b % 2) == 0;
          const int block = static_cast<int>(b / 2);
          const int s_lo = block * kJsdBlock;
          const int s_hi = std::min(num_samples, s_lo + kJsdBlock);
          Rng rng(runtime::ShardedRng::DeriveSeed(seed, b));
          if (from_p) {
            part.kl_p += JsdBlockSum(p, p, q, s_lo, s_hi, &rng);
          } else {
            part.kl_q += JsdBlockSum(q, p, q, s_lo, s_hi, &rng);
          }
        }
        return part;
      },
      [](KlPair acc, KlPair part) {
        acc.kl_p += part.kl_p;
        acc.kl_q += part.kl_q;
        return acc;
      });
  double jsd =
      0.5 * (kl.kl_p + kl.kl_q) / static_cast<double>(num_samples);
  // MC noise can push the estimate slightly negative near zero divergence.
  return std::max(0.0, jsd);
}

}  // namespace serd
