#include "gmm/o_distribution.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace serd {

ODistribution::ODistribution(double pi, Gmm m, Gmm n)
    : pi_(pi), m_(std::move(m)), n_(std::move(n)) {
  SERD_CHECK(pi_ >= 0.0 && pi_ <= 1.0);
  SERD_CHECK_EQ(m_.dimension(), n_.dimension());
}

double ODistribution::LogPdf(const Vec& x) const {
  double log_m = (pi_ > 0.0 ? std::log(pi_) + m_.LogPdf(x)
                            : -std::numeric_limits<double>::infinity());
  double log_n = (pi_ < 1.0 ? std::log(1.0 - pi_) + n_.LogPdf(x)
                            : -std::numeric_limits<double>::infinity());
  double hi = std::max(log_m, log_n);
  if (!std::isfinite(hi)) return hi;
  return hi + std::log(std::exp(log_m - hi) + std::exp(log_n - hi));
}

ODistribution::SampleResult ODistribution::Sample(Rng* rng) const {
  SERD_CHECK(rng != nullptr);
  bool from_match = rng->Bernoulli(pi_);
  Vec x = from_match ? m_.Sample(rng) : n_.Sample(rng);
  for (double& v : x) v = std::clamp(v, 0.0, 1.0);
  return {std::move(x), from_match};
}

double ODistribution::PosteriorMatch(const Vec& x) const {
  if (pi_ <= 0.0) return 0.0;
  if (pi_ >= 1.0) return 1.0;
  double log_m = std::log(pi_) + m_.LogPdf(x);
  double log_n = std::log(1.0 - pi_) + n_.LogPdf(x);
  double hi = std::max(log_m, log_n);
  double zm = std::exp(log_m - hi);
  double zn = std::exp(log_n - hi);
  return zm / (zm + zn);
}

double EstimateJsd(const ODistribution& p, const ODistribution& q,
                   int num_samples, uint64_t seed) {
  SERD_CHECK_GT(num_samples, 0);
  constexpr double kLogHalf = -0.6931471805599453;
  Rng rng(seed);
  double kl_p = 0.0;
  for (int i = 0; i < num_samples; ++i) {
    Vec x = p.Sample(&rng).x;
    double lp = p.LogPdf(x);
    double lq = q.LogPdf(x);
    double hi = std::max(lp, lq);
    double log_mix = kLogHalf + hi + std::log(std::exp(lp - hi) +
                                              std::exp(lq - hi));
    kl_p += lp - log_mix;
  }
  double kl_q = 0.0;
  for (int i = 0; i < num_samples; ++i) {
    Vec x = q.Sample(&rng).x;
    double lp = p.LogPdf(x);
    double lq = q.LogPdf(x);
    double hi = std::max(lp, lq);
    double log_mix = kLogHalf + hi + std::log(std::exp(lp - hi) +
                                              std::exp(lq - hi));
    kl_q += lq - log_mix;
  }
  double jsd = 0.5 * (kl_p + kl_q) / static_cast<double>(num_samples);
  // MC noise can push the estimate slightly negative near zero divergence.
  return std::max(0.0, jsd);
}

}  // namespace serd
