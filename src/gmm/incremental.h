#ifndef SERD_GMM_INCREMENTAL_H_
#define SERD_GMM_INCREMENTAL_H_

#include <vector>

#include "gmm/gmm.h"

namespace serd {

/// Incremental GMM maintenance for entity rejection (paper Section V,
/// Eqs. 8-9). Instead of refitting on all synthesized pairs each time an
/// entity is added, we keep per-component sufficient statistics
///   Gamma_k = sum_i gamma_{i,k}
///   m_k     = sum_i gamma_{i,k} x_i
///   S_k     = sum_i gamma_{i,k} x_i x_i^T
/// and fold in the new points' responsibilities (computed against the
/// current parameters, Eq. 8). The updated parameters
///   mu_k = m_k / Gamma_k,  Sigma_k = S_k / Gamma_k - mu_k mu_k^T,
///   pi_k = Gamma_k / n
/// are algebraically identical to the paper's Eq. 9 (the scatter form
/// around the *updated* mean expands to exactly these moments).
///
/// Updates are two-phase: Preview() computes the would-be model without
/// mutating state, so the rejection test can discard it; Commit() adopts a
/// previewed update.
class IncrementalGmm {
 public:
  IncrementalGmm() = default;

  /// Seeds the statistics from a fitted model and its supporting data
  /// (one E-step pass over `data`).
  IncrementalGmm(const Gmm& model, const std::vector<Vec>& data,
                 double ridge = 1e-6);

  size_t num_points() const { return n_; }
  const Gmm& model() const { return model_; }

  /// The sufficient statistics after hypothetically adding `points`.
  struct Delta {
    std::vector<double> gamma_sum;   // per component
    std::vector<Vec> weighted_sum;   // per component, dimension d
    std::vector<Matrix> second_moment;  // per component, d x d
    size_t count = 0;
  };

  /// Computes the delta statistics for `points` (paper Eq. 8) against the
  /// current model. Does not mutate state.
  Delta ComputeDelta(const std::vector<Vec>& points) const;

  /// The model that would result from folding in `delta` (paper Eq. 9).
  Gmm PreviewModel(const Delta& delta) const;

  /// Adopts the delta: statistics and the current model are updated.
  void Commit(const Delta& delta);

 private:
  Gmm RebuildModel(const std::vector<double>& gamma,
                   const std::vector<Vec>& wsum,
                   const std::vector<Matrix>& smom, size_t n) const;

  Gmm model_;
  std::vector<double> gamma_sum_;
  std::vector<Vec> weighted_sum_;
  std::vector<Matrix> second_moment_;
  size_t n_ = 0;
  double ridge_ = 1e-6;
};

}  // namespace serd

#endif  // SERD_GMM_INCREMENTAL_H_
