#ifndef SERD_GMM_GAUSSIAN_H_
#define SERD_GMM_GAUSSIAN_H_

#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "common/status.h"

namespace serd {

/// A multivariate normal N(mu, Sigma) with a cached Cholesky factor.
/// Covariances are regularized with a ridge on construction so that the
/// factorization exists even for degenerate sample covariances (common for
/// tight matching-pair clusters where one column similarity is constant).
class MultivariateGaussian {
 public:
  MultivariateGaussian() = default;

  /// Builds the density; adds `ridge` to the diagonal. If the matrix is
  /// still not positive definite, the ridge is grown (x10 up to 1e3 tries
  /// worth) until it is — the caller keeps a usable density in all cases.
  MultivariateGaussian(Vec mean, Matrix covariance, double ridge = 1e-6);

  /// Reconstructs a density from previously computed parts without
  /// re-running the regularization/factorization loop (artifact store).
  /// Because `chol`/`log_det` are restored verbatim, LogPdf and Sample are
  /// bit-identical to the instance the parts were taken from, regardless
  /// of how much ridge growth the original construction needed. The caller
  /// must have validated the dimensions (d, d x d, d x d).
  static MultivariateGaussian FromParts(Vec mean, Matrix covariance,
                                        Matrix chol, double log_det);

  size_t dimension() const { return mean_.size(); }
  const Vec& mean() const { return mean_; }
  const Matrix& covariance() const { return covariance_; }
  /// Lower-triangular factor of the regularized covariance (serialization).
  const Matrix& cholesky() const { return chol_; }
  double log_det() const { return log_det_; }

  /// log N(x; mu, Sigma).
  double LogPdf(const Vec& x) const;

  /// Draws x = mu + L z with z ~ N(0, I).
  Vec Sample(Rng* rng) const;

 private:
  Vec mean_;
  Matrix covariance_;
  Matrix chol_;      // lower-triangular factor of the regularized covariance
  double log_det_ = 0.0;
};

}  // namespace serd

#endif  // SERD_GMM_GAUSSIAN_H_
