#ifndef SERD_GMM_GMM_H_
#define SERD_GMM_GMM_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "gmm/gaussian.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"

namespace serd {

/// Options for EM fitting (paper Section IV-A).
struct GmmFitOptions {
  int max_iterations = 200;
  double tolerance = 1e-5;      ///< stop when log-likelihood gain < tolerance
  double ridge = 1e-6;          ///< covariance regularization
  int max_components = 4;       ///< upper bound for AIC model selection
  uint64_t seed = 17;           ///< EM initialization seed
  int num_restarts = 2;         ///< random restarts per component count

  /// Worker pool for the E-/M-step loops and the AIC candidate fits
  /// (not owned; may outlive the fit call only). nullptr = serial. Results
  /// are bit-identical for any pool size (ordered chunk reduction).
  runtime::ThreadPool* pool = nullptr;

  /// Observability sink for FitWithAic (not owned; nullptr = off):
  /// counters gmm.fits / gmm.em_iterations, histogram
  /// gmm.selected_components, timer gmm.fit. Per-candidate EM iteration
  /// counts are tallied into chunk-indexed shards and folded in shard
  /// order, so the recorded totals are thread-count independent.
  obs::MetricsRegistry* metrics = nullptr;
};

/// A multivariate Gaussian Mixture Model: p(x) = sum_i pi_i N(x; mu_i, S_i).
/// Used for the paper's M- and N-distributions over similarity vectors.
class Gmm {
 public:
  Gmm() = default;
  Gmm(std::vector<double> weights,
      std::vector<MultivariateGaussian> components);

  /// Restores a mixture with the weights taken verbatim — no
  /// re-normalization (artifact store). The constructor divides each
  /// weight by their sum, which perturbs low bits when the stored sum is
  /// only approximately 1; reloading a fitted model must not do that or
  /// Sample()/LogPdf() drift from the original. The caller must have
  /// validated sizes, non-negativity, and a positive total.
  static Gmm FromParts(std::vector<double> weights,
                       std::vector<MultivariateGaussian> components);

  size_t num_components() const { return components_.size(); }
  size_t dimension() const {
    return components_.empty() ? 0 : components_[0].dimension();
  }
  const std::vector<double>& weights() const { return weights_; }
  const MultivariateGaussian& component(size_t i) const {
    return components_[i];
  }

  /// log p(x) via log-sum-exp over components.
  double LogPdf(const Vec& x) const;

  /// p(x) = exp(LogPdf(x)).
  double Pdf(const Vec& x) const;

  /// Posterior responsibilities gamma_k(x) (paper Eq. 5). Returns a vector
  /// of length num_components() summing to 1.
  Vec Responsibilities(const Vec& x) const;

  /// Draws a sample: component by weight, then from its Gaussian.
  Vec Sample(Rng* rng) const;

  /// Mean log-likelihood of `data` (nats per point).
  double MeanLogLikelihood(const std::vector<Vec>& data) const;

  /// Fits a GMM with exactly `g` components by EM (paper Eqs. 4-6).
  /// Requires data.size() >= 1; g is clamped to data.size(). When
  /// `em_iterations` is non-null it receives the EM iterations executed,
  /// summed over restarts (a deterministic count: convergence is decided
  /// on the ordered-reduction log-likelihood).
  static Result<Gmm> FitEM(const std::vector<Vec>& data, int g,
                           const GmmFitOptions& options,
                           long* em_iterations = nullptr);

  /// Fits GMMs with 1..max_components components and returns the one
  /// minimizing AIC = 2k - 2 log L (paper Section IV-A).
  static Result<Gmm> FitWithAic(const std::vector<Vec>& data,
                                const GmmFitOptions& options);

  /// Number of free parameters (for AIC): (g-1) + g*d + g*d*(d+1)/2.
  static double NumFreeParameters(int g, int d);

 private:
  std::vector<double> weights_;
  std::vector<MultivariateGaussian> components_;
};

}  // namespace serd

#endif  // SERD_GMM_GMM_H_
