#include "gmm/gaussian.h"

#include <cmath>

namespace serd {

namespace {
constexpr double kLog2Pi = 1.8378770664093453;  // log(2*pi)
}

MultivariateGaussian::MultivariateGaussian(Vec mean, Matrix covariance,
                                           double ridge)
    : mean_(std::move(mean)), covariance_(std::move(covariance)) {
  SERD_CHECK_EQ(covariance_.rows(), mean_.size());
  SERD_CHECK_EQ(covariance_.cols(), mean_.size());
  Matrix regularized = covariance_;
  double r = ridge;
  for (int attempt = 0; attempt < 12; ++attempt) {
    regularized = covariance_;
    regularized.AddDiagonal(r);
    auto chol = Cholesky(regularized);
    if (chol.ok()) {
      chol_ = std::move(chol).value();
      log_det_ = LogDetFromCholesky(chol_);
      return;
    }
    r = (r == 0.0) ? 1e-8 : r * 10.0;
  }
  SERD_CHECK(false) << "covariance could not be regularized to SPD";
}

MultivariateGaussian MultivariateGaussian::FromParts(Vec mean,
                                                     Matrix covariance,
                                                     Matrix chol,
                                                     double log_det) {
  SERD_CHECK_EQ(covariance.rows(), mean.size());
  SERD_CHECK_EQ(covariance.cols(), mean.size());
  SERD_CHECK_EQ(chol.rows(), mean.size());
  SERD_CHECK_EQ(chol.cols(), mean.size());
  MultivariateGaussian g;
  g.mean_ = std::move(mean);
  g.covariance_ = std::move(covariance);
  g.chol_ = std::move(chol);
  g.log_det_ = log_det;
  return g;
}

double MultivariateGaussian::LogPdf(const Vec& x) const {
  SERD_CHECK_EQ(x.size(), mean_.size());
  Vec diff = Sub(x, mean_);
  // Solve L y = diff; then (x-mu)^T Sigma^-1 (x-mu) = ||y||^2.
  Vec y = ForwardSolve(chol_, diff);
  double quad = Dot(y, y);
  double d = static_cast<double>(mean_.size());
  return -0.5 * (d * kLog2Pi + log_det_ + quad);
}

Vec MultivariateGaussian::Sample(Rng* rng) const {
  SERD_CHECK(rng != nullptr);
  Vec z(mean_.size());
  for (double& v : z) v = rng->Gaussian();
  Vec x = mean_;
  for (size_t i = 0; i < mean_.size(); ++i) {
    double s = 0.0;
    for (size_t j = 0; j <= i; ++j) s += chol_(i, j) * z[j];
    x[i] += s;
  }
  return x;
}

}  // namespace serd
