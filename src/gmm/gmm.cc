#include "gmm/gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace serd {

Gmm::Gmm(std::vector<double> weights,
         std::vector<MultivariateGaussian> components)
    : weights_(std::move(weights)), components_(std::move(components)) {
  SERD_CHECK_EQ(weights_.size(), components_.size());
  SERD_CHECK(!components_.empty());
  double total = 0.0;
  for (double w : weights_) {
    SERD_CHECK_GE(w, 0.0);
    total += w;
  }
  SERD_CHECK_GT(total, 0.0);
  for (double& w : weights_) w /= total;
}

double Gmm::LogPdf(const Vec& x) const {
  SERD_CHECK(!components_.empty());
  double max_term = -std::numeric_limits<double>::infinity();
  std::vector<double> terms(components_.size());
  for (size_t k = 0; k < components_.size(); ++k) {
    terms[k] = (weights_[k] > 0.0 ? std::log(weights_[k])
                                  : -std::numeric_limits<double>::infinity()) +
               components_[k].LogPdf(x);
    max_term = std::max(max_term, terms[k]);
  }
  if (!std::isfinite(max_term)) return max_term;
  double sum = 0.0;
  for (double t : terms) sum += std::exp(t - max_term);
  return max_term + std::log(sum);
}

double Gmm::Pdf(const Vec& x) const { return std::exp(LogPdf(x)); }

Vec Gmm::Responsibilities(const Vec& x) const {
  std::vector<double> terms(components_.size());
  double max_term = -std::numeric_limits<double>::infinity();
  for (size_t k = 0; k < components_.size(); ++k) {
    terms[k] = (weights_[k] > 0.0 ? std::log(weights_[k])
                                  : -std::numeric_limits<double>::infinity()) +
               components_[k].LogPdf(x);
    max_term = std::max(max_term, terms[k]);
  }
  Vec gamma(components_.size(), 0.0);
  if (!std::isfinite(max_term)) {
    // All components give zero density: fall back to the prior weights.
    for (size_t k = 0; k < components_.size(); ++k) gamma[k] = weights_[k];
    return gamma;
  }
  double total = 0.0;
  for (size_t k = 0; k < components_.size(); ++k) {
    gamma[k] = std::exp(terms[k] - max_term);
    total += gamma[k];
  }
  for (double& g : gamma) g /= total;
  return gamma;
}

Vec Gmm::Sample(Rng* rng) const {
  SERD_CHECK(rng != nullptr);
  size_t k = rng->Categorical(weights_);
  return components_[k].Sample(rng);
}

double Gmm::MeanLogLikelihood(const std::vector<Vec>& data) const {
  SERD_CHECK(!data.empty());
  double total = 0.0;
  for (const auto& x : data) total += LogPdf(x);
  return total / static_cast<double>(data.size());
}

double Gmm::NumFreeParameters(int g, int d) {
  return static_cast<double>(g - 1) + static_cast<double>(g) * d +
         static_cast<double>(g) * d * (d + 1) / 2.0;
}

namespace {

/// One full EM run from a random initialization. Returns the fitted model
/// and its total log-likelihood.
struct EmRun {
  Gmm model = Gmm({1.0}, {MultivariateGaussian({0.0}, Matrix::Identity(1))});
  double log_likelihood = -std::numeric_limits<double>::infinity();
};

Matrix SampleCovariance(const std::vector<Vec>& data, const Vec& mean) {
  const size_t d = mean.size();
  Matrix cov(d, d);
  for (const auto& x : data) {
    Vec diff = Sub(x, mean);
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = 0; j < d; ++j) cov(i, j) += diff[i] * diff[j];
    }
  }
  double inv_n = 1.0 / static_cast<double>(data.size());
  for (auto& v : cov.data()) v *= inv_n;
  return cov;
}

EmRun RunEmOnce(const std::vector<Vec>& data, int g,
                const GmmFitOptions& options, Rng* rng) {
  const size_t n = data.size();
  const size_t d = data[0].size();

  // Initialization: means at distinct random points; covariance = global
  // sample covariance; uniform weights.
  Vec global_mean(d, 0.0);
  for (const auto& x : data) AddInPlace(&global_mean, x);
  ScaleInPlace(&global_mean, 1.0 / static_cast<double>(n));
  Matrix global_cov = SampleCovariance(data, global_mean);

  // Variance floor: prevents the classic GMM likelihood blow-up where a
  // component collapses onto a handful of points with near-singular
  // covariance (which would also defeat AIC model selection). The floor
  // scales with the data's own spread.
  double mean_var = 0.0;
  for (size_t i = 0; i < d; ++i) mean_var += global_cov(i, i);
  mean_var /= static_cast<double>(d);
  const double var_floor = std::max(options.ridge, 1e-3 * mean_var);

  std::vector<double> weights(g, 1.0 / g);
  std::vector<MultivariateGaussian> comps;
  comps.reserve(g);
  for (int k = 0; k < g; ++k) {
    const Vec& seed_point = data[rng->UniformInt(n)];
    comps.emplace_back(seed_point, global_cov, var_floor);
  }
  Gmm model(weights, std::move(comps));

  double prev_ll = -std::numeric_limits<double>::infinity();
  std::vector<Vec> gammas(n);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // E-step (paper Eq. 5) + log-likelihood.
    double ll = 0.0;
    for (size_t i = 0; i < n; ++i) {
      gammas[i] = model.Responsibilities(data[i]);
      ll += model.LogPdf(data[i]);
    }
    if (iter > 0 && ll - prev_ll < options.tolerance) {
      return {model, ll};
    }
    prev_ll = ll;

    // M-step (paper Eq. 6).
    std::vector<double> new_weights(g);
    std::vector<MultivariateGaussian> new_comps;
    new_comps.reserve(g);
    for (int k = 0; k < g; ++k) {
      double gamma_sum = 0.0;
      Vec mu(d, 0.0);
      for (size_t i = 0; i < n; ++i) {
        gamma_sum += gammas[i][k];
        for (size_t j = 0; j < d; ++j) mu[j] += gammas[i][k] * data[i][j];
      }
      if (gamma_sum < 1e-10) {
        // Dead component: re-seed at a random point.
        new_comps.emplace_back(data[rng->UniformInt(n)], global_cov,
                               var_floor);
        new_weights[k] = 1.0 / static_cast<double>(n);
        continue;
      }
      ScaleInPlace(&mu, 1.0 / gamma_sum);
      Matrix cov(d, d);
      for (size_t i = 0; i < n; ++i) {
        Vec diff = Sub(data[i], mu);
        double gk = gammas[i][k];
        for (size_t r = 0; r < d; ++r) {
          for (size_t c = 0; c < d; ++c) cov(r, c) += gk * diff[r] * diff[c];
        }
      }
      for (auto& v : cov.data()) v /= gamma_sum;
      new_comps.emplace_back(std::move(mu), std::move(cov), var_floor);
      new_weights[k] = gamma_sum / static_cast<double>(n);
    }
    model = Gmm(std::move(new_weights), std::move(new_comps));
  }
  double ll = 0.0;
  for (const auto& x : data) ll += model.LogPdf(x);
  return {model, ll};
}

}  // namespace

Result<Gmm> Gmm::FitEM(const std::vector<Vec>& data, int g,
                       const GmmFitOptions& options) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot fit a GMM on empty data");
  }
  g = std::max(1, std::min<int>(g, static_cast<int>(data.size())));
  Rng rng(options.seed + static_cast<uint64_t>(g) * 1000003ULL);
  EmRun best;
  int restarts = std::max(1, options.num_restarts);
  for (int r = 0; r < restarts; ++r) {
    EmRun run = RunEmOnce(data, g, options, &rng);
    if (run.log_likelihood > best.log_likelihood) best = std::move(run);
  }
  return best.model;
}

Result<Gmm> Gmm::FitWithAic(const std::vector<Vec>& data,
                            const GmmFitOptions& options) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot fit a GMM on empty data");
  }
  const int d = static_cast<int>(data[0].size());
  double best_aic = std::numeric_limits<double>::infinity();
  Result<Gmm> best = Status::Internal("no model fitted");
  const int max_g =
      std::max(1, std::min<int>(options.max_components,
                                static_cast<int>(data.size())));
  for (int g = 1; g <= max_g; ++g) {
    auto fitted = FitEM(data, g, options);
    if (!fitted.ok()) continue;
    double ll = 0.0;
    for (const auto& x : data) ll += fitted->LogPdf(x);
    double aic = 2.0 * NumFreeParameters(g, d) - 2.0 * ll;
    if (aic < best_aic) {
      best_aic = aic;
      best = std::move(fitted);
    }
  }
  return best;
}

}  // namespace serd
