#include "gmm/gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/trace.h"
#include "runtime/parallel_for.h"

namespace serd {

Gmm::Gmm(std::vector<double> weights,
         std::vector<MultivariateGaussian> components)
    : weights_(std::move(weights)), components_(std::move(components)) {
  SERD_CHECK_EQ(weights_.size(), components_.size());
  SERD_CHECK(!components_.empty());
  double total = 0.0;
  for (double w : weights_) {
    SERD_CHECK_GE(w, 0.0);
    total += w;
  }
  SERD_CHECK_GT(total, 0.0);
  for (double& w : weights_) w /= total;
}

Gmm Gmm::FromParts(std::vector<double> weights,
                   std::vector<MultivariateGaussian> components) {
  SERD_CHECK_EQ(weights.size(), components.size());
  SERD_CHECK(!components.empty());
  Gmm gmm;
  gmm.weights_ = std::move(weights);
  gmm.components_ = std::move(components);
  return gmm;
}

double Gmm::LogPdf(const Vec& x) const {
  SERD_CHECK(!components_.empty());
  double max_term = -std::numeric_limits<double>::infinity();
  std::vector<double> terms(components_.size());
  for (size_t k = 0; k < components_.size(); ++k) {
    terms[k] = (weights_[k] > 0.0 ? std::log(weights_[k])
                                  : -std::numeric_limits<double>::infinity()) +
               components_[k].LogPdf(x);
    max_term = std::max(max_term, terms[k]);
  }
  if (!std::isfinite(max_term)) return max_term;
  double sum = 0.0;
  for (double t : terms) sum += std::exp(t - max_term);
  return max_term + std::log(sum);
}

double Gmm::Pdf(const Vec& x) const { return std::exp(LogPdf(x)); }

Vec Gmm::Responsibilities(const Vec& x) const {
  std::vector<double> terms(components_.size());
  double max_term = -std::numeric_limits<double>::infinity();
  for (size_t k = 0; k < components_.size(); ++k) {
    terms[k] = (weights_[k] > 0.0 ? std::log(weights_[k])
                                  : -std::numeric_limits<double>::infinity()) +
               components_[k].LogPdf(x);
    max_term = std::max(max_term, terms[k]);
  }
  Vec gamma(components_.size(), 0.0);
  if (!std::isfinite(max_term)) {
    // All components give zero density: fall back to the prior weights.
    for (size_t k = 0; k < components_.size(); ++k) gamma[k] = weights_[k];
    return gamma;
  }
  double total = 0.0;
  for (size_t k = 0; k < components_.size(); ++k) {
    gamma[k] = std::exp(terms[k] - max_term);
    total += gamma[k];
  }
  for (double& g : gamma) g /= total;
  return gamma;
}

Vec Gmm::Sample(Rng* rng) const {
  SERD_CHECK(rng != nullptr);
  size_t k = rng->Categorical(weights_);
  return components_[k].Sample(rng);
}

double Gmm::MeanLogLikelihood(const std::vector<Vec>& data) const {
  SERD_CHECK(!data.empty());
  double total = 0.0;
  for (const auto& x : data) total += LogPdf(x);
  return total / static_cast<double>(data.size());
}

double Gmm::NumFreeParameters(int g, int d) {
  return static_cast<double>(g - 1) + static_cast<double>(g) * d +
         static_cast<double>(g) * d * (d + 1) / 2.0;
}

namespace {

/// One full EM run from a random initialization. Returns the fitted model
/// and its total log-likelihood.
struct EmRun {
  Gmm model = Gmm({1.0}, {MultivariateGaussian({0.0}, Matrix::Identity(1))});
  double log_likelihood = -std::numeric_limits<double>::infinity();
  int iterations = 0;
};

Matrix SampleCovariance(const std::vector<Vec>& data, const Vec& mean) {
  const size_t d = mean.size();
  Matrix cov(d, d);
  for (const auto& x : data) {
    Vec diff = Sub(x, mean);
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = 0; j < d; ++j) cov(i, j) += diff[i] * diff[j];
    }
  }
  double inv_n = 1.0 / static_cast<double>(data.size());
  for (auto& v : cov.data()) v *= inv_n;
  return cov;
}

/// Per-point work in the E-/M-steps is O(g * d^2); this grain keeps chunks
/// in the tens-of-microseconds range. Fixed (never derived from the thread
/// count) so chunked reductions associate identically for any pool size.
constexpr size_t kEmGrain = 128;

EmRun RunEmOnce(const std::vector<Vec>& data, int g,
                const GmmFitOptions& options, Rng* rng) {
  const size_t n = data.size();
  const size_t d = data[0].size();
  runtime::ThreadPool* pool = options.pool;

  // Initialization: means at distinct random points; covariance = global
  // sample covariance; uniform weights.
  Vec global_mean(d, 0.0);
  for (const auto& x : data) AddInPlace(&global_mean, x);
  ScaleInPlace(&global_mean, 1.0 / static_cast<double>(n));
  Matrix global_cov = SampleCovariance(data, global_mean);

  // Variance floor: prevents the classic GMM likelihood blow-up where a
  // component collapses onto a handful of points with near-singular
  // covariance (which would also defeat AIC model selection). The floor
  // scales with the data's own spread.
  double mean_var = 0.0;
  for (size_t i = 0; i < d; ++i) mean_var += global_cov(i, i);
  mean_var /= static_cast<double>(d);
  const double var_floor = std::max(options.ridge, 1e-3 * mean_var);

  std::vector<double> weights(g, 1.0 / g);
  std::vector<MultivariateGaussian> comps;
  comps.reserve(g);
  for (int k = 0; k < g; ++k) {
    const Vec& seed_point = data[rng->UniformInt(n)];
    comps.emplace_back(seed_point, global_cov, var_floor);
  }
  Gmm model(weights, std::move(comps));

  // Per-chunk first moments of the M-step: responsibilities mass and
  // responsibility-weighted data sums per component.
  struct Moments {
    std::vector<double> gamma_sum;
    std::vector<Vec> mu_sum;
  };
  // Per-chunk second moments: responsibility-weighted outer products.
  struct CovPartial {
    std::vector<Matrix> cov;
  };

  double prev_ll = -std::numeric_limits<double>::infinity();
  std::vector<Vec> gammas(n);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // E-step (paper Eq. 5) + log-likelihood. gammas[i] depends only on i;
    // the log-likelihood is reduced in chunk order.
    double ll = runtime::ParallelReduce<double>(
        pool, 0, n, kEmGrain, 0.0,
        [&](size_t lo, size_t hi) {
          double part = 0.0;
          for (size_t i = lo; i < hi; ++i) {
            gammas[i] = model.Responsibilities(data[i]);
            part += model.LogPdf(data[i]);
          }
          return part;
        },
        [](double a, double b) { return a + b; });
    if (iter > 0 && ll - prev_ll < options.tolerance) {
      return {model, ll, iter + 1};
    }
    prev_ll = ll;

    // M-step (paper Eq. 6), two chunked passes: first moments, then
    // covariances around the updated means.
    Moments moments = runtime::ParallelReduce<Moments>(
        pool, 0, n, kEmGrain, Moments{},
        [&](size_t lo, size_t hi) {
          Moments part;
          part.gamma_sum.assign(g, 0.0);
          part.mu_sum.assign(g, Vec(d, 0.0));
          for (size_t i = lo; i < hi; ++i) {
            for (int k = 0; k < g; ++k) {
              const double gk = gammas[i][k];
              part.gamma_sum[k] += gk;
              for (size_t j = 0; j < d; ++j) {
                part.mu_sum[k][j] += gk * data[i][j];
              }
            }
          }
          return part;
        },
        [](Moments acc, Moments part) {
          if (acc.gamma_sum.empty()) return part;
          for (size_t k = 0; k < acc.gamma_sum.size(); ++k) {
            acc.gamma_sum[k] += part.gamma_sum[k];
            AddInPlace(&acc.mu_sum[k], part.mu_sum[k]);
          }
          return acc;
        });

    std::vector<Vec> mu(g, Vec(d, 0.0));
    for (int k = 0; k < g; ++k) {
      if (moments.gamma_sum[k] < 1e-10) continue;
      mu[k] = moments.mu_sum[k];
      ScaleInPlace(&mu[k], 1.0 / moments.gamma_sum[k]);
    }

    CovPartial covs = runtime::ParallelReduce<CovPartial>(
        pool, 0, n, kEmGrain, CovPartial{},
        [&](size_t lo, size_t hi) {
          CovPartial part;
          part.cov.assign(g, Matrix(d, d));
          for (size_t i = lo; i < hi; ++i) {
            for (int k = 0; k < g; ++k) {
              if (moments.gamma_sum[k] < 1e-10) continue;
              Vec diff = Sub(data[i], mu[k]);
              const double gk = gammas[i][k];
              Matrix& cov = part.cov[k];
              for (size_t r = 0; r < d; ++r) {
                for (size_t c = 0; c < d; ++c) {
                  cov(r, c) += gk * diff[r] * diff[c];
                }
              }
            }
          }
          return part;
        },
        [](CovPartial acc, CovPartial part) {
          if (acc.cov.empty()) return part;
          for (size_t k = 0; k < acc.cov.size(); ++k) {
            auto& a = acc.cov[k].data();
            const auto& p = part.cov[k].data();
            for (size_t i = 0; i < a.size(); ++i) a[i] += p[i];
          }
          return acc;
        });

    std::vector<double> new_weights(g);
    std::vector<MultivariateGaussian> new_comps;
    new_comps.reserve(g);
    for (int k = 0; k < g; ++k) {
      const double gamma_sum = moments.gamma_sum[k];
      if (gamma_sum < 1e-10) {
        // Dead component: re-seed at a random point.
        new_comps.emplace_back(data[rng->UniformInt(n)], global_cov,
                               var_floor);
        new_weights[k] = 1.0 / static_cast<double>(n);
        continue;
      }
      Matrix cov = std::move(covs.cov[k]);
      for (auto& v : cov.data()) v /= gamma_sum;
      new_comps.emplace_back(std::move(mu[k]), std::move(cov), var_floor);
      new_weights[k] = gamma_sum / static_cast<double>(n);
    }
    model = Gmm(std::move(new_weights), std::move(new_comps));
  }
  double ll = runtime::ParallelReduce<double>(
      pool, 0, n, kEmGrain, 0.0,
      [&](size_t lo, size_t hi) {
        double part = 0.0;
        for (size_t i = lo; i < hi; ++i) part += model.LogPdf(data[i]);
        return part;
      },
      [](double a, double b) { return a + b; });
  return {model, ll, options.max_iterations};
}

}  // namespace

Result<Gmm> Gmm::FitEM(const std::vector<Vec>& data, int g,
                       const GmmFitOptions& options, long* em_iterations) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot fit a GMM on empty data");
  }
  g = std::max(1, std::min<int>(g, static_cast<int>(data.size())));
  Rng rng(options.seed + static_cast<uint64_t>(g) * 1000003ULL);
  EmRun best;
  long iterations = 0;
  int restarts = std::max(1, options.num_restarts);
  for (int r = 0; r < restarts; ++r) {
    EmRun run = RunEmOnce(data, g, options, &rng);
    iterations += run.iterations;
    if (run.log_likelihood > best.log_likelihood) best = std::move(run);
  }
  if (em_iterations != nullptr) *em_iterations = iterations;
  return best.model;
}

Result<Gmm> Gmm::FitWithAic(const std::vector<Vec>& data,
                            const GmmFitOptions& options) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot fit a GMM on empty data");
  }
  const int d = static_cast<int>(data[0].size());
  const int max_g =
      std::max(1, std::min<int>(options.max_components,
                                static_cast<int>(data.size())));
  obs::TraceSpan fit_span(options.metrics, "gmm.fit");

  // Fit all candidate component counts concurrently: every candidate seeds
  // its own Rng from (options.seed, g), so the fits are independent and the
  // ascending-g selection below matches the serial algorithm exactly. Each
  // fit's inner E-/M-loops share the same pool; the caller-participation
  // guarantee of ParallelFor makes the nesting deadlock-free.
  std::vector<Result<Gmm>> fits(max_g, Status::Internal("not fitted"));
  std::vector<double> aics(max_g,
                           std::numeric_limits<double>::infinity());
  // Per-candidate EM iteration counts land in their own slot and are folded
  // in ascending-g order below, so the recorded total is thread-count
  // independent.
  std::vector<long> em_iters(max_g, 0);
  runtime::ParallelFor(
      options.pool, 0, static_cast<size_t>(max_g), 1,
      [&](size_t lo, size_t hi) {
        for (size_t gi = lo; gi < hi; ++gi) {
          const int g = static_cast<int>(gi) + 1;
          auto fitted = FitEM(data, g, options, &em_iters[gi]);
          if (!fitted.ok()) {
            fits[gi] = std::move(fitted);
            continue;
          }
          double ll = 0.0;
          for (const auto& x : data) ll += fitted->LogPdf(x);
          aics[gi] = 2.0 * NumFreeParameters(g, d) - 2.0 * ll;
          fits[gi] = std::move(fitted);
        }
      });

  double best_aic = std::numeric_limits<double>::infinity();
  int best_g = 0;
  long total_iters = 0;
  Result<Gmm> best = Status::Internal("no model fitted");
  for (int gi = 0; gi < max_g; ++gi) {
    total_iters += em_iters[gi];
    if (!fits[gi].ok()) continue;
    if (aics[gi] < best_aic) {
      best_aic = aics[gi];
      best_g = gi + 1;
      best = std::move(fits[gi]);
    }
  }
  if (options.metrics != nullptr) {
    obs::Inc(options.metrics->counter("gmm.fits"));
    obs::Inc(options.metrics->counter("gmm.em_iterations"),
             static_cast<uint64_t>(std::max<long>(0, total_iters)));
    if (best.ok()) {
      options.metrics
          ->histogram("gmm.selected_components", obs::LinearBounds(1.0, 8.0, 8))
          ->Record(static_cast<double>(best_g));
    }
  }
  return best;
}

}  // namespace serd
