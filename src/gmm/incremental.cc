#include "gmm/incremental.h"

namespace serd {

IncrementalGmm::IncrementalGmm(const Gmm& model, const std::vector<Vec>& data,
                               double ridge)
    : model_(model), ridge_(ridge) {
  const size_t g = model.num_components();
  const size_t d = model.dimension();
  gamma_sum_.assign(g, 0.0);
  weighted_sum_.assign(g, Vec(d, 0.0));
  second_moment_.assign(g, Matrix(d, d));
  for (const auto& x : data) {
    Vec gamma = model_.Responsibilities(x);
    for (size_t k = 0; k < g; ++k) {
      gamma_sum_[k] += gamma[k];
      for (size_t i = 0; i < d; ++i) {
        weighted_sum_[k][i] += gamma[k] * x[i];
        for (size_t j = 0; j < d; ++j) {
          second_moment_[k](i, j) += gamma[k] * x[i] * x[j];
        }
      }
    }
  }
  n_ = data.size();
}

IncrementalGmm::Delta IncrementalGmm::ComputeDelta(
    const std::vector<Vec>& points) const {
  const size_t g = model_.num_components();
  const size_t d = model_.dimension();
  Delta delta;
  delta.gamma_sum.assign(g, 0.0);
  delta.weighted_sum.assign(g, Vec(d, 0.0));
  delta.second_moment.assign(g, Matrix(d, d));
  for (const auto& x : points) {
    Vec gamma = model_.Responsibilities(x);  // paper Eq. 8
    for (size_t k = 0; k < g; ++k) {
      delta.gamma_sum[k] += gamma[k];
      for (size_t i = 0; i < d; ++i) {
        delta.weighted_sum[k][i] += gamma[k] * x[i];
        for (size_t j = 0; j < d; ++j) {
          delta.second_moment[k](i, j) += gamma[k] * x[i] * x[j];
        }
      }
    }
  }
  delta.count = points.size();
  return delta;
}

Gmm IncrementalGmm::RebuildModel(const std::vector<double>& gamma,
                                 const std::vector<Vec>& wsum,
                                 const std::vector<Matrix>& smom,
                                 size_t n) const {
  const size_t g = model_.num_components();
  const size_t d = model_.dimension();
  std::vector<double> weights(g);
  std::vector<MultivariateGaussian> comps;
  comps.reserve(g);
  for (size_t k = 0; k < g; ++k) {
    if (gamma[k] < 1e-10) {
      // Empty component: keep its previous parameters with a tiny weight.
      comps.push_back(model_.component(k));
      weights[k] = 1e-10;
      continue;
    }
    Vec mu = wsum[k];
    ScaleInPlace(&mu, 1.0 / gamma[k]);
    Matrix cov(d, d);
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = 0; j < d; ++j) {
        cov(i, j) = smom[k](i, j) / gamma[k] - mu[i] * mu[j];
      }
    }
    comps.emplace_back(std::move(mu), std::move(cov), ridge_);
    weights[k] = gamma[k] / static_cast<double>(n);
  }
  return Gmm(std::move(weights), std::move(comps));
}

Gmm IncrementalGmm::PreviewModel(const Delta& delta) const {
  const size_t g = model_.num_components();
  const size_t d = model_.dimension();
  std::vector<double> gamma(g);
  std::vector<Vec> wsum(g, Vec(d, 0.0));
  std::vector<Matrix> smom(g, Matrix(d, d));
  for (size_t k = 0; k < g; ++k) {
    gamma[k] = gamma_sum_[k] + delta.gamma_sum[k];
    for (size_t i = 0; i < d; ++i) {
      wsum[k][i] = weighted_sum_[k][i] + delta.weighted_sum[k][i];
      for (size_t j = 0; j < d; ++j) {
        smom[k](i, j) = second_moment_[k](i, j) + delta.second_moment[k](i, j);
      }
    }
  }
  return RebuildModel(gamma, wsum, smom, n_ + delta.count);
}

void IncrementalGmm::Commit(const Delta& delta) {
  const size_t g = model_.num_components();
  const size_t d = model_.dimension();
  for (size_t k = 0; k < g; ++k) {
    gamma_sum_[k] += delta.gamma_sum[k];
    for (size_t i = 0; i < d; ++i) {
      weighted_sum_[k][i] += delta.weighted_sum[k][i];
      for (size_t j = 0; j < d; ++j) {
        second_moment_[k](i, j) += delta.second_moment[k](i, j);
      }
    }
  }
  n_ += delta.count;
  model_ = RebuildModel(gamma_sum_, weighted_sum_, second_moment_, n_);
}

}  // namespace serd
