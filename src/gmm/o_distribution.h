#ifndef SERD_GMM_O_DISTRIBUTION_H_
#define SERD_GMM_O_DISTRIBUTION_H_

#include <vector>

#include "common/rng.h"
#include "gmm/gmm.h"
#include "runtime/thread_pool.h"

namespace serd {

/// The paper's O-distribution: the mixture of the matching distribution
/// (M, weight pi) and the non-matching distribution (N, weight 1-pi) over
/// similarity vectors:  p(x) = pi * p_m(x) + (1-pi) * p_n(x).
class ODistribution {
 public:
  ODistribution() = default;
  ODistribution(double pi, Gmm m, Gmm n);

  double pi() const { return pi_; }
  const Gmm& m_distribution() const { return m_; }
  const Gmm& n_distribution() const { return n_; }
  size_t dimension() const { return m_.dimension(); }

  double LogPdf(const Vec& x) const;

  /// A sampled similarity vector plus which mixture arm produced it.
  struct SampleResult {
    Vec x;
    bool from_match;
  };

  /// Samples from M with probability pi, else from N (paper step S2-2).
  /// Components are clamped to [0, 1] since similarities live there.
  SampleResult Sample(Rng* rng) const;

  /// Samples without the [0, 1] clamp. The Monte-Carlo JSD estimator must
  /// draw from the *actual* mixture density it evaluates LogPdf under:
  /// clamping piles probability mass onto the faces of the unit cube while
  /// LogPdf still integrates over all of R^d, which biases the KL terms
  /// whenever the GMM has mass outside the cube (common for boundary-
  /// hugging similarity mixtures near 0/1). Entity synthesis keeps using
  /// the clamped Sample(). Consumes the same RNG draws as Sample().
  SampleResult SampleUnclamped(Rng* rng) const;

  /// Posterior probability that x belongs to the M-distribution
  /// (paper Section IV-C): P_m(x) = pi p_m(x) / (pi p_m(x) + (1-pi) p_n(x)).
  double PosteriorMatch(const Vec& x) const;

  /// Labels x as matching iff P_m(x) >= P_n(x) = 1 - P_m(x).
  bool LabelAsMatch(const Vec& x) const { return PosteriorMatch(x) >= 0.5; }

 private:
  double pi_ = 0.5;
  Gmm m_;
  Gmm n_;
};

/// Monte-Carlo estimate of the Jensen-Shannon divergence between two
/// O-distributions (paper Eq. 3):
///   JSD(p||q) = 0.5 E_p[log p/m] + 0.5 E_q[log q/m],  m = (p+q)/2.
/// Uses `num_samples` draws from each side with the provided seed so that
/// successive estimates in the rejection test share randomness (common
/// random numbers -> the comparison in Eq. 10 is low-variance).
///
/// The draws are sharded into fixed-size blocks, each with its own RNG
/// stream derived from (seed, block); blocks run on `pool` when given.
/// The estimate is a pure function of (p, q, num_samples, seed) — the
/// same for any pool size, including none.
double EstimateJsd(const ODistribution& p, const ODistribution& q,
                   int num_samples, uint64_t seed,
                   runtime::ThreadPool* pool = nullptr);

}  // namespace serd

#endif  // SERD_GMM_O_DISTRIBUTION_H_
